//===-- tests/SessionTest.cpp - partition-engine session tests ------------===//

#include "engine/Serve.h"
#include "engine/Session.h"
#include "core/ModelIO.h"
#include "mpp/Runtime.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace fupermod;
using namespace fupermod::engine;

namespace {

Point makePoint(double Units, double Time, int Reps = 3) {
  Point P;
  P.Units = Units;
  P.Time = Time;
  P.Reps = Reps;
  P.ConfidenceInterval = 0.01;
  return P;
}

/// A session over the two-device simulated platform.
std::unique_ptr<Session> makeTwoDeviceSession() {
  SessionConfig Cfg;
  Cfg.Platform = makeTwoDeviceCluster();
  Cfg.Platform.NoiseSigma = 0.0;
  auto R = Session::create(std::move(Cfg));
  EXPECT_TRUE(R.ok()) << R.error();
  return std::move(R.value());
}

/// Writes a fitted model file whose speed is \p UnitsPerSec.
void writeModelFile(const std::string &Path, double UnitsPerSec) {
  auto M = makeModel("piecewise");
  for (int I = 1; I <= 4; ++I)
    M->update(makePoint(100.0 * I, 100.0 * I / UnitsPerSec));
  ASSERT_TRUE(fupermod::saveModel(Path, *M));
}

std::string tempPath(const std::string &Name) {
  return ::testing::TempDir() + "/" + Name;
}

/// refreshModels() keys on mtime; filesystem timestamps can be coarse,
/// so force a visibly newer mtime after rewriting a file.
void bumpMTime(const std::string &Path) {
  std::filesystem::last_write_time(
      Path, std::filesystem::last_write_time(Path) +
                std::chrono::milliseconds(10));
}

} // namespace

TEST(Session, CreateRejectsUnknownNamesWithAlternatives) {
  {
    SessionConfig Cfg;
    Cfg.ModelKind = "spline";
    auto R = Session::create(std::move(Cfg));
    ASSERT_FALSE(R.ok());
    EXPECT_NE(R.error().find("unknown model kind 'spline'"),
              std::string::npos)
        << R.error();
    EXPECT_NE(R.error().find("piecewise"), std::string::npos) << R.error();
  }
  {
    SessionConfig Cfg;
    Cfg.Algorithm = "fastest";
    auto R = Session::create(std::move(Cfg));
    ASSERT_FALSE(R.ok());
    EXPECT_NE(R.error().find("unknown partitioner 'fastest'"),
              std::string::npos)
        << R.error();
  }
  {
    SessionConfig Cfg;
    Cfg.KernelName = "fft";
    auto R = Session::create(std::move(Cfg));
    ASSERT_FALSE(R.ok());
    EXPECT_NE(R.error().find("unknown kernel 'fft'"), std::string::npos)
        << R.error();
  }
}

TEST(Session, MeasureSynchronizedFitsEveryRank) {
  auto S = makeTwoDeviceSession();
  SyncMeasurePlan Plan;
  Plan.Prec.MinReps = 2;
  Plan.Prec.MaxReps = 3;
  for (int I = 1; I <= 5; ++I)
    Plan.Sizes.push_back(100.0 * I);
  ASSERT_TRUE(S->measureSynchronized(Plan).ok());
  ASSERT_EQ(S->rankCount(), 2);
  for (int R = 0; R < 2; ++R) {
    ASSERT_NE(S->model(R), nullptr);
    EXPECT_TRUE(S->model(R)->fitted()) << R;
    EXPECT_EQ(S->slot(R).Raw.size(), Plan.Sizes.size());
  }
  Result<Dist> D = S->partition(1000);
  ASSERT_TRUE(D.ok()) << D.error();
  EXPECT_EQ(D.value().Parts[0].Units + D.value().Parts[1].Units, 1000);
}

TEST(Session, FeedbackLoopDrivesPartitioning) {
  auto S = makeTwoDeviceSession();
  ASSERT_TRUE(S->initModels(2).ok());
  // Unfitted models are a partition error naming the rank.
  Result<Dist> Unfitted = S->partition(100);
  ASSERT_FALSE(Unfitted.ok());
  EXPECT_NE(Unfitted.error().find("rank 0"), std::string::npos)
      << Unfitted.error();

  // Rank 0 is 3x faster; the distribution must lean its way.
  for (int I = 1; I <= 3; ++I) {
    ASSERT_TRUE(S->feedback(0, makePoint(90.0 * I, 1.0 * I)).ok());
    ASSERT_TRUE(S->feedback(1, makePoint(30.0 * I, 1.0 * I)).ok());
  }
  Result<Dist> D = S->partition(400);
  ASSERT_TRUE(D.ok()) << D.error();
  EXPECT_GT(D.value().Parts[0].Units, D.value().Parts[1].Units);
  EXPECT_FALSE(S->feedback(7, makePoint(1.0, 1.0)).ok());
}

TEST(Session, PartitionValidatesInputs) {
  auto S = makeTwoDeviceSession();
  Result<Dist> NoModels = S->partition(100);
  ASSERT_FALSE(NoModels.ok());
  EXPECT_NE(NoModels.error().find("no models"), std::string::npos);

  ASSERT_TRUE(S->initModels(2).ok());
  ASSERT_TRUE(S->feedback(0, makePoint(100.0, 1.0)).ok());
  ASSERT_TRUE(S->feedback(1, makePoint(100.0, 1.0)).ok());
  Result<Dist> BadTotal = S->partition(0);
  ASSERT_FALSE(BadTotal.ok());
  EXPECT_NE(BadTotal.error().find("positive"), std::string::npos);

  Result<Dist> BadAlgo = S->partition(100, "fastest");
  ASSERT_FALSE(BadAlgo.ok());
  EXPECT_NE(BadAlgo.error().find("unknown partitioner"), std::string::npos);

  // A per-call override beats the session default.
  Result<Dist> Constant = S->partition(100, "constant");
  ASSERT_TRUE(Constant.ok()) << Constant.error();
}

TEST(Session, LoadModelsReportsFileAndParseError) {
  SessionConfig Cfg;
  auto SR = Session::create(std::move(Cfg));
  ASSERT_TRUE(SR.ok());
  Session &S = *SR.value();

  std::string Missing = tempPath("session_missing.fpm");
  std::vector<std::string> Paths = {Missing};
  Status R = S.loadModels(Paths);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.error().find(Missing), std::string::npos) << R.error();
  EXPECT_NE(R.error().find("cannot open file"), std::string::npos)
      << R.error();

  std::string Corrupt = tempPath("session_corrupt.fpm");
  {
    std::ofstream OS(Corrupt);
    OS << "# fupermod model\nkind piecewise\npoints 1\nnot a point\n";
  }
  Paths = {Corrupt};
  R = S.loadModels(Paths);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.error().find(Corrupt), std::string::npos) << R.error();
  EXPECT_NE(R.error().find("line 4"), std::string::npos) << R.error();
}

TEST(Session, AllowDegradedExcludesBrokenRanksWithWarnings) {
  SessionConfig Cfg;
  Cfg.AllowDegraded = true;
  auto SR = Session::create(std::move(Cfg));
  ASSERT_TRUE(SR.ok());
  Session &S = *SR.value();

  std::string Good = tempPath("session_degraded_good.fpm");
  writeModelFile(Good, 500.0);
  std::string Missing = tempPath("session_degraded_missing.fpm");
  std::vector<std::string> Paths = {Good, Missing};
  ASSERT_TRUE(S.loadModels(Paths).ok());
  EXPECT_FALSE(S.warnings().empty());
  EXPECT_TRUE(S.slot(0).Exclusion.empty());
  EXPECT_FALSE(S.slot(1).Exclusion.empty());

  Result<Dist> D = S.partition(300);
  ASSERT_TRUE(D.ok()) << D.error();
  EXPECT_EQ(D.value().Parts[0].Units, 300);
  EXPECT_EQ(D.value().Parts[1].Units, 0);
  EXPECT_EQ(S.activeModels().size(), 1u);
}

TEST(Session, RefreshModelsHotReloadsChangedFiles) {
  SessionConfig Cfg;
  auto SR = Session::create(std::move(Cfg));
  ASSERT_TRUE(SR.ok());
  Session &S = *SR.value();

  std::string A = tempPath("session_reload_a.fpm");
  std::string B = tempPath("session_reload_b.fpm");
  writeModelFile(A, 400.0);
  writeModelFile(B, 400.0);
  std::vector<std::string> Paths = {A, B};
  ASSERT_TRUE(S.loadModels(Paths).ok());

  // Unchanged files: nothing to do.
  Result<int> None = S.refreshModels();
  ASSERT_TRUE(None.ok());
  EXPECT_EQ(None.value(), 0);
  Dist Before = S.partition(1000).value();
  EXPECT_EQ(Before.Parts[0].Units, Before.Parts[1].Units);

  // Rank 0 got 3x faster on disk; a refresh must shift the partition.
  writeModelFile(A, 1200.0);
  bumpMTime(A);
  Result<int> One = S.refreshModels();
  ASSERT_TRUE(One.ok());
  EXPECT_EQ(One.value(), 1);
  Dist After = S.partition(1000).value();
  EXPECT_GT(After.Parts[0].Units, After.Parts[1].Units);

  // A reload that breaks keeps the previous model and records a warning.
  {
    std::ofstream OS(A);
    OS << "kind piecewise\n"; // Missing points header.
  }
  bumpMTime(A);
  Result<int> Broken = S.refreshModels();
  ASSERT_TRUE(Broken.ok());
  EXPECT_EQ(Broken.value(), 0);
  EXPECT_FALSE(S.warnings().empty());
  Dist Kept = S.partition(1000).value();
  EXPECT_EQ(Kept.Parts[0].Units, After.Parts[0].Units);
}

TEST(Session, RefreshModelsCatchesSameMTimeRewrite) {
  // Regression: refreshModels used to key change detection on mtime
  // alone. A rewrite landing within the filesystem timestamp granularity
  // (same mtime, same or different size) was silently skipped. The
  // fingerprint is now (mtime, size, content hash).
  SessionConfig Cfg;
  auto SR = Session::create(std::move(Cfg));
  ASSERT_TRUE(SR.ok());
  Session &S = *SR.value();

  std::string A = tempPath("session_mtime_race_a.fpm");
  std::string B = tempPath("session_mtime_race_b.fpm");
  writeModelFile(A, 400.0);
  writeModelFile(B, 400.0);
  std::vector<std::string> Paths = {A, B};
  ASSERT_TRUE(S.loadModels(Paths).ok());

  // Rewrite A with different content (3x faster device) but force the
  // mtime back to exactly what the session remembers.
  auto OldTime = std::filesystem::last_write_time(A);
  auto OldSize = std::filesystem::file_size(A);
  writeModelFile(A, 1200.0);
  std::filesystem::last_write_time(A, OldTime);

  Result<int> R = S.refreshModels();
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.value(), 1) << "same-mtime rewrite must still be detected";
  Dist After = S.partition(1000).value();
  EXPECT_GT(After.Parts[0].Units, After.Parts[1].Units);

  // The pathological corner: same mtime AND same size but different
  // bytes — only the content hash can tell. Flip one digit in place.
  std::string Content;
  {
    std::ifstream IS(A, std::ios::binary);
    std::ostringstream SS;
    SS << IS.rdbuf();
    Content = SS.str();
  }
  OldTime = std::filesystem::last_write_time(A);
  OldSize = std::filesystem::file_size(A);
  std::size_t Digit = Content.find_last_of("0123456789");
  ASSERT_NE(Digit, std::string::npos);
  Content[Digit] = Content[Digit] == '9' ? '8' : '9';
  {
    std::ofstream OS(A, std::ios::binary | std::ios::trunc);
    OS << Content;
  }
  ASSERT_EQ(std::filesystem::file_size(A), OldSize);
  std::filesystem::last_write_time(A, OldTime);
  Result<int> R2 = S.refreshModels();
  ASSERT_TRUE(R2.ok());
  EXPECT_EQ(R2.value(), 1)
      << "same-mtime same-size byte flip must still be detected";

  // And a genuine no-op rewrite (same bytes, same mtime) must not count
  // as a reload.
  std::filesystem::last_write_time(A, OldTime);
  Result<int> R3 = S.refreshModels();
  ASSERT_TRUE(R3.ok());
  EXPECT_EQ(R3.value(), 0);
}

TEST(Session, ModelEpochAdvancesOnEveryMutation) {
  SessionConfig Cfg;
  auto SR = Session::create(std::move(Cfg));
  ASSERT_TRUE(SR.ok());
  Session &S = *SR.value();

  std::uint64_t E0 = S.modelEpoch();
  std::string A = tempPath("session_epoch_a.fpm");
  writeModelFile(A, 400.0);
  std::vector<std::string> Paths = {A};
  ASSERT_TRUE(S.loadModels(Paths).ok());
  std::uint64_t E1 = S.modelEpoch();
  EXPECT_GT(E1, E0);

  // A refresh that reloads nothing must not bump the epoch (cached
  // partition replies keyed by it stay valid).
  Result<int> None = S.refreshModels();
  ASSERT_TRUE(None.ok());
  EXPECT_EQ(None.value(), 0);
  EXPECT_EQ(S.modelEpoch(), E1);

  writeModelFile(A, 800.0);
  bumpMTime(A);
  ASSERT_TRUE(S.refreshModels().ok());
  EXPECT_GT(S.modelEpoch(), E1);

  // partitionRendered stamps the epoch the solve actually used.
  Result<PartitionReply> Reply = S.partitionRendered(1000);
  ASSERT_TRUE(Reply.ok()) << Reply.error();
  EXPECT_EQ(Reply.value().Epoch, S.modelEpoch());
  EXPECT_NE(Reply.value().Text.find("partitioning of 1000 units"),
            std::string::npos)
      << Reply.value().Text;
}

TEST(Session, ExecuteRunsTheBodyOnThePlatform) {
  auto S = makeTwoDeviceSession();
  std::vector<int> Seen(2, 0);
  Result<SpmdResult> R = S->execute(2, [&](Comm &C) {
    Seen[static_cast<std::size_t>(C.rank())] = 1;
    C.compute(0.5);
  });
  ASSERT_TRUE(R.ok()) << R.error();
  EXPECT_EQ(Seen[0] + Seen[1], 2);
  EXPECT_GE(R.value().makespan(), 0.5);
  EXPECT_FALSE(S->execute(0, [](Comm &) {}).ok());
}

TEST(Serve, ParsesRequestsAndReportsBadLines) {
  {
    std::istringstream IS("# comment\n3000\n1000 numerical\nreload\n");
    auto R = parseServeRequests(IS);
    ASSERT_TRUE(R.ok()) << R.error();
    ASSERT_EQ(R.value().size(), 3u);
    EXPECT_EQ(R.value()[0].Total, 3000);
    EXPECT_EQ(R.value()[1].Algorithm, "numerical");
    EXPECT_TRUE(R.value()[2].Reload);
  }
  {
    // Malformed lines no longer abort the batch: they come back as
    // skip-and-record requests carrying the line number and diagnostic.
    std::istringstream IS("3000\nnonsense\n2000\n");
    auto R = parseServeRequests(IS);
    ASSERT_TRUE(R.ok()) << R.error();
    ASSERT_EQ(R.value().size(), 3u);
    EXPECT_TRUE(R.value()[0].ParseError.empty());
    EXPECT_EQ(R.value()[1].LineNo, 2u);
    EXPECT_NE(R.value()[1].ParseError.find("line 2"), std::string::npos)
        << R.value()[1].ParseError;
    EXPECT_NE(R.value()[1].ParseError.find("nonsense"), std::string::npos)
        << R.value()[1].ParseError;
    EXPECT_TRUE(R.value()[2].ParseError.empty());
    EXPECT_EQ(R.value()[2].Total, 2000);
  }
  {
    // Trailing junk after a well-formed request is also recorded.
    ServeRequest Req;
    ASSERT_TRUE(parseServeLine("1000 numerical extra", 7, Req));
    EXPECT_NE(Req.ParseError.find("line 7"), std::string::npos)
        << Req.ParseError;
    EXPECT_NE(Req.ParseError.find("extra"), std::string::npos)
        << Req.ParseError;
  }
}

TEST(Serve, MalformedLinesAreReportedInPlaceAndServingContinues) {
  SessionConfig Cfg;
  auto SR = Session::create(std::move(Cfg));
  ASSERT_TRUE(SR.ok());
  Session &S = *SR.value();
  std::string A = tempPath("serve_malformed_a.fpm");
  writeModelFile(A, 500.0);
  std::vector<std::string> Paths = {A};
  ASSERT_TRUE(S.loadModels(Paths).ok());

  std::istringstream IS("1000\nbogus line\n-5\n2000\n");
  auto Requests = parseServeRequests(IS);
  ASSERT_TRUE(Requests.ok());
  std::ostringstream OS;
  ServeStats St = serveRequests(S, Requests.value(), OS);
  EXPECT_EQ(St.Answered, 2);
  EXPECT_EQ(St.Failed, 2);
  EXPECT_EQ(St.Malformed, 2);
  // Both error records name their line, and the batch still answered
  // the requests around them.
  EXPECT_NE(OS.str().find("# error: request line 2"), std::string::npos)
      << OS.str();
  EXPECT_NE(OS.str().find("# error: request line 3"), std::string::npos)
      << OS.str();
  EXPECT_NE(OS.str().find("partitioning of 2000 units"), std::string::npos)
      << OS.str();
}

TEST(Serve, AnswersRequestsFromOneSession) {
  SessionConfig Cfg;
  auto SR = Session::create(std::move(Cfg));
  ASSERT_TRUE(SR.ok());
  Session &S = *SR.value();
  std::string A = tempPath("serve_a.fpm");
  std::string B = tempPath("serve_b.fpm");
  writeModelFile(A, 900.0);
  writeModelFile(B, 300.0);
  std::vector<std::string> Paths = {A, B};
  ASSERT_TRUE(S.loadModels(Paths).ok());

  std::vector<ServeRequest> Requests(2);
  Requests[0].Total = 1200;
  Requests[1].Total = 400;
  Requests[1].Algorithm = "constant";
  std::ostringstream OS;
  ServeStats St = serveRequests(S, Requests, OS);
  EXPECT_EQ(St.Answered, 2);
  EXPECT_EQ(St.Failed, 0);
  EXPECT_NE(OS.str().find("geometric partitioning of 1200 units"),
            std::string::npos)
      << OS.str();
  EXPECT_NE(OS.str().find("constant partitioning of 400 units"),
            std::string::npos)
      << OS.str();

  // A bad per-request algorithm fails that request, not the batch.
  Requests[0].Algorithm = "fastest";
  std::ostringstream OS2;
  St = serveRequests(S, Requests, OS2);
  EXPECT_EQ(St.Answered, 1);
  EXPECT_EQ(St.Failed, 1);
  EXPECT_NE(OS2.str().find("# error: unknown partitioner 'fastest'"),
            std::string::npos)
      << OS2.str();
}
