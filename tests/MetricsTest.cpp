//===-- tests/MetricsTest.cpp - partition metric tests --------------------===//

#include "core/Metrics.h"

#include <gtest/gtest.h>

using namespace fupermod;

TEST(TrueTimes, EvaluatesProfiles) {
  std::vector<DeviceProfile> Profiles = {makeConstantProfile("a", 10.0),
                                         makeConstantProfile("b", 20.0)};
  Dist D = Dist::even(60, 2); // 30 each.
  auto Times = trueTimes(D, Profiles);
  ASSERT_EQ(Times.size(), 2u);
  EXPECT_DOUBLE_EQ(Times[0], 3.0);
  EXPECT_DOUBLE_EQ(Times[1], 1.5);
}

TEST(TrueTimes, ZeroUnitsTakeZeroTime) {
  std::vector<DeviceProfile> Profiles = {makeConstantProfile("a", 10.0)};
  Dist D;
  D.Total = 0;
  D.Parts.resize(1);
  auto Times = trueTimes(D, Profiles);
  EXPECT_DOUBLE_EQ(Times[0], 0.0);
}

TEST(Makespan, PicksMaximum) {
  std::vector<double> T = {1.0, 5.0, 2.0};
  EXPECT_DOUBLE_EQ(makespan(T), 5.0);
}

TEST(Imbalance, ZeroForEqualTimes) {
  std::vector<double> T = {2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(imbalance(T), 0.0);
}

TEST(Imbalance, KnownValue) {
  std::vector<double> T = {1.0, 4.0};
  EXPECT_DOUBLE_EQ(imbalance(T), 0.75);
}

TEST(Imbalance, AllZeroTimes) {
  std::vector<double> T = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(imbalance(T), 0.0);
}

TEST(Imbalance, EmptyTimesIsBalanced) {
  // Regression: every rank excluded (degraded run) used to hit an assert
  // in debug builds and an out-of-bounds read in release builds.
  std::vector<double> T;
  EXPECT_DOUBLE_EQ(imbalance(T), 0.0);
}

TEST(Imbalance, SingleTimeIsBalanced) {
  std::vector<double> T = {3.5};
  EXPECT_DOUBLE_EQ(imbalance(T), 0.0);
}

TEST(MaskedImbalance, IgnoresInactiveRanks) {
  // Regression: a rank excluded by staleness decay or a hard failure
  // holds zero units and measures a near-zero time, which the unmasked
  // metric misreads as a permanent maximal imbalance.
  std::vector<double> T = {1.0, 4.0, 0.0};
  std::vector<std::uint8_t> Active = {1, 1, 0};
  EXPECT_DOUBLE_EQ(imbalance(T, Active), 0.75);
  // The unmasked metric over the same times is pinned near 1.
  EXPECT_DOUBLE_EQ(imbalance(T), 1.0);
}

TEST(MaskedImbalance, MatchesUnmaskedWhenAllActive) {
  std::vector<double> T = {2.0, 3.0, 6.0};
  std::vector<std::uint8_t> Active = {1, 1, 1};
  EXPECT_DOUBLE_EQ(imbalance(T, Active), imbalance(T));
}

TEST(MaskedImbalance, AllInactiveIsBalanced) {
  // A fully degraded run has no active ranks left to be imbalanced.
  std::vector<double> T = {5.0, 7.0};
  std::vector<std::uint8_t> Active = {0, 0};
  EXPECT_DOUBLE_EQ(imbalance(T, Active), 0.0);
}

TEST(MaskedImbalance, SingleActiveRankIsBalanced) {
  std::vector<double> T = {0.1, 9.0, 0.2};
  std::vector<std::uint8_t> Active = {0, 1, 0};
  EXPECT_DOUBLE_EQ(imbalance(T, Active), 0.0);
}

TEST(MaskedImbalance, ZeroTimesAmongActiveRanks) {
  // An active rank with a zero time pins the metric at its maximum —
  // that is real imbalance, not a masking artifact.
  std::vector<double> T = {0.0, 2.0};
  std::vector<std::uint8_t> Active = {1, 1};
  EXPECT_DOUBLE_EQ(imbalance(T, Active), 1.0);
}

TEST(OptimalMakespan, AnalyticForConstantSpeeds) {
  // Speeds 10 and 30: optimum gives everything time D / 40.
  std::vector<DeviceProfile> Profiles = {makeConstantProfile("a", 10.0),
                                         makeConstantProfile("b", 30.0)};
  EXPECT_NEAR(optimalMakespan(400, Profiles), 10.0, 1e-6);
}

TEST(OptimalMakespan, SingleDevice) {
  std::vector<DeviceProfile> Profiles = {makeConstantProfile("a", 25.0)};
  EXPECT_NEAR(optimalMakespan(100, Profiles), 4.0, 1e-6);
}

TEST(OptimalMakespan, NeverAboveAnyAlgorithmicDistribution) {
  std::vector<DeviceProfile> Profiles = {
      makeCpuProfile("a", 500.0, 20.0, 1000.0, 100.0, 0.5),
      makeCpuProfile("b", 200.0, 10.0, 3000.0, 400.0, 0.3)};
  double Opt = optimalMakespan(5000, Profiles);
  // An arbitrary (even) distribution cannot beat the optimum.
  Dist Even = Dist::even(5000, 2);
  auto Times = trueTimes(Even, Profiles);
  EXPECT_LE(Opt, makespan(Times) + 1e-9);
}
