//===-- tests/SolverTest.cpp - solver library tests -----------------------===//

#include "solver/LinearAlgebra.h"
#include "solver/NewtonSolver.h"
#include "solver/RootFinding.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

using namespace fupermod;

TEST(LuSolve, Identity) {
  std::vector<double> A = {1, 0, 0, 0, 1, 0, 0, 0, 1};
  std::vector<double> B = {3, -1, 7};
  auto X = luSolve(A, B);
  ASSERT_TRUE(X.has_value());
  EXPECT_NEAR((*X)[0], 3.0, 1e-12);
  EXPECT_NEAR((*X)[1], -1.0, 1e-12);
  EXPECT_NEAR((*X)[2], 7.0, 1e-12);
}

TEST(LuSolve, KnownSystem) {
  // 2x + y = 5; x + 3y = 10 -> x = 1, y = 3.
  std::vector<double> A = {2, 1, 1, 3};
  std::vector<double> B = {5, 10};
  auto X = luSolve(A, B);
  ASSERT_TRUE(X.has_value());
  EXPECT_NEAR((*X)[0], 1.0, 1e-12);
  EXPECT_NEAR((*X)[1], 3.0, 1e-12);
}

TEST(LuSolve, RequiresPivoting) {
  // Zero on the leading diagonal forces a row swap.
  std::vector<double> A = {0, 1, 1, 0};
  std::vector<double> B = {2, 3};
  auto X = luSolve(A, B);
  ASSERT_TRUE(X.has_value());
  EXPECT_NEAR((*X)[0], 3.0, 1e-12);
  EXPECT_NEAR((*X)[1], 2.0, 1e-12);
}

TEST(LuSolve, DetectsSingular) {
  std::vector<double> A = {1, 2, 2, 4};
  std::vector<double> B = {1, 2};
  EXPECT_FALSE(luSolve(A, B).has_value());
}

TEST(LuSolve, LargerRandomSystemRoundTrips) {
  const std::size_t N = 12;
  std::vector<double> A(N * N);
  std::vector<double> XTrue(N);
  for (std::size_t I = 0; I < N; ++I) {
    XTrue[I] = static_cast<double>(I) - 5.0;
    for (std::size_t J = 0; J < N; ++J)
      A[I * N + J] = std::sin(static_cast<double>(I * 31 + J * 7)) +
                     (I == J ? static_cast<double>(N) : 0.0);
  }
  std::vector<double> B(N, 0.0);
  for (std::size_t I = 0; I < N; ++I)
    for (std::size_t J = 0; J < N; ++J)
      B[I] += A[I * N + J] * XTrue[J];
  auto X = luSolve(A, B);
  ASSERT_TRUE(X.has_value());
  for (std::size_t I = 0; I < N; ++I)
    EXPECT_NEAR((*X)[I], XTrue[I], 1e-9);
}

TEST(Norms, KnownValues) {
  std::vector<double> V = {3.0, -4.0};
  EXPECT_DOUBLE_EQ(norm2(V), 5.0);
  EXPECT_DOUBLE_EQ(normInf(V), 4.0);
}

TEST(Bisect, FindsSqrtTwo) {
  auto F = [](double X) { return X * X - 2.0; };
  auto R = bisect(F, 0.0, 2.0);
  ASSERT_TRUE(R.has_value());
  EXPECT_NEAR(*R, std::sqrt(2.0), 1e-10);
}

TEST(Bisect, EndpointRootReturnedImmediately) {
  auto F = [](double X) { return X - 1.0; };
  auto R = bisect(F, 1.0, 5.0);
  ASSERT_TRUE(R.has_value());
  EXPECT_DOUBLE_EQ(*R, 1.0);
}

TEST(Bisect, RejectsInvalidBracket) {
  auto F = [](double X) { return X * X + 1.0; };
  EXPECT_FALSE(bisect(F, -1.0, 1.0).has_value());
}

TEST(Brent, FindsRootFasterThanBisection) {
  int EvalsBrent = 0, EvalsBisect = 0;
  auto FB = [&](double X) {
    ++EvalsBrent;
    return std::cos(X) - X;
  };
  auto FBi = [&](double X) {
    ++EvalsBisect;
    return std::cos(X) - X;
  };
  RootOptions Opt;
  Opt.XTolerance = 1e-12;
  auto RB = brent(FB, 0.0, 1.0, Opt);
  auto RBi = bisect(FBi, 0.0, 1.0, Opt);
  ASSERT_TRUE(RB.has_value());
  ASSERT_TRUE(RBi.has_value());
  EXPECT_NEAR(*RB, 0.7390851332151607, 1e-9);
  EXPECT_NEAR(*RB, *RBi, 1e-9);
  EXPECT_LT(EvalsBrent, EvalsBisect);
}

TEST(Brent, RejectsInvalidBracket) {
  auto F = [](double X) { return X * X + 0.5; };
  EXPECT_FALSE(brent(F, -2.0, 2.0).has_value());
}

TEST(Newton, ScalarSquareRoot) {
  VectorFunction F = [](std::span<const double> X, std::span<double> R) {
    R[0] = X[0] * X[0] - 9.0;
  };
  std::vector<double> X0 = {1.0};
  NewtonResult Res = solveNewton(F, X0);
  EXPECT_TRUE(Res.Converged);
  EXPECT_NEAR(Res.X[0], 3.0, 1e-8);
}

TEST(Newton, TwoDimensionalSystem) {
  // x^2 + y^2 = 25, x - y = 1  ->  (4, 3) from a nearby start.
  VectorFunction F = [](std::span<const double> X, std::span<double> R) {
    R[0] = X[0] * X[0] + X[1] * X[1] - 25.0;
    R[1] = X[0] - X[1] - 1.0;
  };
  std::vector<double> X0 = {5.0, 2.0};
  NewtonResult Res = solveNewton(F, X0);
  EXPECT_TRUE(Res.Converged);
  EXPECT_NEAR(Res.X[0], 4.0, 1e-7);
  EXPECT_NEAR(Res.X[1], 3.0, 1e-7);
}

TEST(Newton, AnalyticJacobianMatchesNumeric) {
  VectorFunction F = [](std::span<const double> X, std::span<double> R) {
    R[0] = std::exp(X[0]) - 2.0;
    R[1] = X[0] + X[1] * X[1] - 2.0;
  };
  JacobianFunction J = [](std::span<const double> X, std::span<double> Out) {
    Out[0] = std::exp(X[0]);
    Out[1] = 0.0;
    Out[2] = 1.0;
    Out[3] = 2.0 * X[1];
  };
  std::vector<double> X0 = {0.0, 1.0};
  NewtonResult A = solveNewton(F, X0);
  NewtonResult B = solveNewton(F, X0, NewtonOptions(), J);
  EXPECT_TRUE(A.Converged);
  EXPECT_TRUE(B.Converged);
  EXPECT_NEAR(A.X[0], B.X[0], 1e-7);
  EXPECT_NEAR(A.X[1], B.X[1], 1e-6);
}

TEST(Newton, RespectsLowerBounds) {
  // Root at x = -2 excluded by the bound; solver must stay >= 0 and
  // report non-convergence rather than walking out of the box.
  VectorFunction F = [](std::span<const double> X, std::span<double> R) {
    R[0] = X[0] + 2.0;
  };
  NewtonOptions Opt;
  Opt.LowerBounds = {0.0};
  Opt.MaxIterations = 20;
  std::vector<double> X0 = {5.0};
  NewtonResult Res = solveNewton(F, X0, Opt);
  EXPECT_FALSE(Res.Converged);
  EXPECT_GE(Res.X[0], 0.0);
}

TEST(Newton, ReportsStallOnSingularJacobian) {
  VectorFunction F = [](std::span<const double> X, std::span<double> R) {
    (void)X;
    R[0] = 1.0; // Constant residual: no root, zero Jacobian.
  };
  std::vector<double> X0 = {0.0};
  NewtonResult Res = solveNewton(F, X0);
  EXPECT_FALSE(Res.Converged);
}

TEST(Newton, AlreadyConvergedAtStart) {
  VectorFunction F = [](std::span<const double> X, std::span<double> R) {
    R[0] = X[0] - 1.0;
  };
  std::vector<double> X0 = {1.0};
  NewtonResult Res = solveNewton(F, X0);
  EXPECT_TRUE(Res.Converged);
  EXPECT_EQ(Res.Iterations, 0);
}

// Property: Newton solves diagonal quadratic systems of any size.
class NewtonSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(NewtonSizeTest, DiagonalQuadratics) {
  std::size_t N = static_cast<std::size_t>(GetParam());
  VectorFunction F = [N](std::span<const double> X, std::span<double> R) {
    for (std::size_t I = 0; I < N; ++I) {
      double Target = static_cast<double>(I + 1);
      R[I] = X[I] * X[I] - Target * Target;
    }
  };
  std::vector<double> X0(N, 0.5);
  NewtonOptions Opt;
  Opt.MaxIterations = 200;
  NewtonResult Res = solveNewton(F, X0, Opt);
  EXPECT_TRUE(Res.Converged);
  for (std::size_t I = 0; I < N; ++I)
    EXPECT_NEAR(Res.X[I], static_cast<double>(I + 1), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sizes, NewtonSizeTest,
                         ::testing::Values(1, 2, 4, 8, 16));
