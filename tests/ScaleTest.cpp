//===-- tests/ScaleTest.cpp - thousand-rank runtime conformance -----------===//
//
// The refactored mpp substrate must behave identically at platform scale:
// topology-aware two-level collectives byte-exact against linear
// references (and therefore against the flat binomial trees) at P = 64,
// 256 and 1024, bit-reproducible allreduce, exact tree-barrier release
// times, tree-rendezvous splits, and — the memory story — far fewer than
// P² mailbox channels for nearest-neighbour traffic on a P = 1024 world.
//
// The 1024-rank cases are suffixed "Slow" and excluded from the tier-1
// ctest entry (see tests/CMakeLists.txt); run them via the ScaleTestSlow
// test or --gtest_filter=*Slow*.
//
//===----------------------------------------------------------------------===//

#include "mpp/Runtime.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

using namespace fupermod;

namespace {

/// Deterministic per-rank payload bytes (SplitMix64-style mixing).
std::vector<std::byte> rankData(int Rank, std::size_t Len) {
  std::vector<std::byte> Data(Len);
  std::uint64_t X = 0x9e3779b97f4a7c15ull *
                    (static_cast<std::uint64_t>(Rank) + 1);
  for (std::size_t I = 0; I < Len; ++I) {
    X ^= X >> 27;
    X *= 0x94d049bb133111ebull;
    Data[I] = static_cast<std::byte>(X >> 56);
  }
  return Data;
}

/// Per-rank contribution length: varied, with rank patterns hitting zero.
std::size_t rankLen(int Rank) {
  return static_cast<std::size_t>((Rank * 37 + 11) % 53) *
         static_cast<std::size_t>(Rank % 3 == 2 ? 0 : 1);
}

/// A multi-node platform: \p RanksPerNode consecutive ranks per node,
/// fast shared-memory links inside a node, a slow network between nodes.
std::shared_ptr<const CostModel> nodedCost(int P, int RanksPerNode) {
  std::vector<int> NodeOf(static_cast<std::size_t>(P));
  for (int R = 0; R < P; ++R)
    NodeOf[static_cast<std::size_t>(R)] = R / RanksPerNode;
  return std::make_shared<TwoLevelCostModel>(
      std::move(NodeOf), LinkCost{1e-6, 1.0 / 8e9},
      LinkCost{5e-5, 1.0 / 1e9});
}

/// Per-rank allreduce contribution with a wide exponent spread, so any
/// reassociation of the sum changes the bits.
double rankValue(int Rank) {
  return (Rank % 7 + 1) * 1e-3 + Rank * 1.0 / 3.0 +
         (Rank % 2 ? 1e8 : 1e-8);
}

/// Runs the collective conformance suite on a multi-node world: bcast and
/// gatherv byte-exact against the deterministic reference data from both
/// a leader root and a non-leader root, allreduce bit-identical to the
/// serial rank-order reduction, and the two-level algorithms actually
/// engaged (or not, per \p Opts).
void checkCollectives(int P, int RanksPerNode, const SpmdOptions &Opts,
                      bool ExpectTwoLevel) {
  auto Cost = nodedCost(P, RanksPerNode);
  const std::size_t BcastLen = 8191;
  int MidRoot = P / 2 + 1; // Not a node leader for RanksPerNode >= 2.

  // Serial rank-order sum — the bit-exact reference for allreduce.
  double ExpectedSum = rankValue(0);
  for (int R = 1; R < P; ++R)
    ExpectedSum += rankValue(R);
  std::vector<std::byte> ExpectedGather;
  for (int R = 0; R < P; ++R) {
    std::vector<std::byte> Chunk = rankData(R, rankLen(R));
    ExpectedGather.insert(ExpectedGather.end(), Chunk.begin(), Chunk.end());
  }

  SpmdResult Result = runSpmd(
      P,
      [&](Comm &C) {
        EXPECT_EQ(C.usesTwoLevelCollectives(), ExpectTwoLevel);

        for (int Root : {0, MidRoot}) {
          std::vector<std::byte> Data;
          if (C.rank() == Root)
            Data = rankData(Root, BcastLen);
          C.bcastBytes(Data, Root);
          EXPECT_TRUE(Data == rankData(Root, BcastLen))
              << "bcast root " << Root << " rank " << C.rank();
        }

        std::vector<std::byte> Mine = rankData(C.rank(),
                                               rankLen(C.rank()));
        for (int Root : {0, MidRoot}) {
          std::vector<std::byte> All = C.gathervBytes(Mine, Root);
          if (C.rank() == Root)
            EXPECT_TRUE(All == ExpectedGather)
                << "gatherv root " << Root;
          else
            EXPECT_TRUE(All.empty());
        }

        double Sum = C.allreduceValue(rankValue(C.rank()), ReduceOp::Sum);
        EXPECT_EQ(Sum, ExpectedSum) << "rank " << C.rank();
      },
      Cost, Opts);
  EXPECT_TRUE(Result.allOk());
}

} // namespace

TEST(Scale, CollectivesByteExact64) {
  checkCollectives(64, 8, SpmdOptions{}, /*ExpectTwoLevel=*/true);
}

TEST(Scale, CollectivesByteExact256) {
  checkCollectives(256, 32, SpmdOptions{}, /*ExpectTwoLevel=*/true);
}

TEST(Scale, CollectivesByteExact1024Slow) {
  checkCollectives(1024, 32, SpmdOptions{}, /*ExpectTwoLevel=*/true);
}

// Disabling two-level (TwoLevelMinRanks <= 0) must flip back to the flat
// trees with identical bytes.
TEST(Scale, FlatFallbackWhenDisabled) {
  SpmdOptions Opts;
  Opts.TwoLevelMinRanks = 0;
  checkCollectives(64, 8, Opts, /*ExpectTwoLevel=*/false);
}

// A single-node topology has nothing to exploit: collectives stay flat
// even above the threshold.
TEST(Scale, FlatOnSingleNodeTopology) {
  checkCollectives(64, 64, SpmdOptions{}, /*ExpectTwoLevel=*/false);
}

// Below the threshold the historical flat algorithms (and their virtual
// times) are untouched even on a multi-node platform.
TEST(Scale, FlatBelowThreshold) {
  checkCollectives(8, 2, SpmdOptions{}, /*ExpectTwoLevel=*/false);
}

// The tree barrier must release every rank at exactly max(entry times),
// through multiple tree levels and repeated rounds.
TEST(Scale, TreeBarrierReleaseIsExactMax) {
  const int P = 256;
  auto Cost = nodedCost(P, 16);
  SpmdResult Result = runSpmd(
      P,
      [&](Comm &C) {
        double Expected = 0.0;
        for (int Iter = 1; Iter <= 4; ++Iter) {
          double Work = ((C.rank() * 31 + Iter * 17) % 97) * 1e-4;
          C.compute(Work);
          double SlowestWork = 0.0;
          for (int R = 0; R < P; ++R)
            SlowestWork =
                std::max(SlowestWork, ((R * 31 + Iter * 17) % 97) * 1e-4);
          Expected = Expected + SlowestWork;
          C.barrier();
          EXPECT_DOUBLE_EQ(C.time(), Expected) << "iter " << Iter;
        }
      },
      Cost);
  EXPECT_TRUE(Result.allOk());
}

// Splits rendezvous through the same combining tree; subgroup structure
// and collectives must be correct at scale.
TEST(Scale, TreeSplitAtScale) {
  const int P = 256;
  const int Colors = 8;
  auto Cost = nodedCost(P, 16);
  SpmdResult Result = runSpmd(
      P,
      [&](Comm &C) {
        int Color = C.rank() % Colors;
        // Key reverses rank order inside the color group.
        Comm Sub = C.split(Color, P - C.rank());
        EXPECT_EQ(Sub.size(), P / Colors);
        // With reversed keys, subgroup rank 0 is the *largest* parent
        // rank of the color class.
        int ExpectedGlobal = (P - Colors + Color) - Sub.rank() * Colors;
        EXPECT_EQ(Sub.globalRank(), ExpectedGlobal);
        double Sum = Sub.allreduceValue(1.0, ReduceOp::Sum);
        EXPECT_EQ(Sum, static_cast<double>(P / Colors));
        Sub.barrier();
      },
      Cost);
  EXPECT_TRUE(Result.allOk());
}

// The memory regression behind the lazy sharded mailboxes: a P = 1024
// world doing nearest-neighbour exchanges plus tree collectives must
// instantiate channels proportional to P, nowhere near the P² = 1M a
// dense mailbox matrix would hold.
TEST(Scale, MailboxChannelsStaySubQuadratic) {
  const int P = 1024;
  auto Cost = nodedCost(P, 32);
  SpmdResult Result = runSpmd(
      P,
      [&](Comm &C) {
        int Right = (C.rank() + 1) % P;
        int Left = (C.rank() + P - 1) % P;
        std::vector<int> Halo = {C.rank(), C.rank() + 1};
        for (int Iter = 0; Iter < 3; ++Iter) {
          std::vector<int> Got = C.sendrecv<int>(
              Right, 5, std::span<const int>(Halo), Left, 5);
          ASSERT_EQ(Got.size(), std::size_t{2});
          EXPECT_EQ(Got[0], Left);
        }
        C.barrier();
        double Sum = C.allreduceValue(1.0, ReduceOp::Sum);
        EXPECT_EQ(Sum, static_cast<double>(P));
      },
      Cost);
  EXPECT_TRUE(Result.allOk());
  EXPECT_GT(Result.Comm.ChannelsCreated, 0u);
  // Ring + two-level gather/bcast trees: a few channels per rank.
  EXPECT_LT(Result.Comm.ChannelsCreated,
            static_cast<unsigned long long>(P) * 24);
  EXPECT_LT(Result.Comm.ChannelsCreated,
            static_cast<unsigned long long>(P) * P / 64);
}
