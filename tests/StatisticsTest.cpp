//===-- tests/StatisticsTest.cpp - support/Statistics tests ---------------===//

#include "support/Statistics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

using namespace fupermod;

TEST(RunningStat, EmptyIsZero) {
  RunningStat S;
  EXPECT_EQ(S.count(), 0u);
  EXPECT_DOUBLE_EQ(S.mean(), 0.0);
  EXPECT_DOUBLE_EQ(S.variance(), 0.0);
  EXPECT_DOUBLE_EQ(S.stddev(), 0.0);
}

TEST(RunningStat, SingleObservation) {
  RunningStat S;
  S.push(3.5);
  EXPECT_EQ(S.count(), 1u);
  EXPECT_DOUBLE_EQ(S.mean(), 3.5);
  EXPECT_DOUBLE_EQ(S.variance(), 0.0);
}

TEST(RunningStat, KnownMeanAndVariance) {
  RunningStat S;
  for (double X : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
    S.push(X);
  EXPECT_DOUBLE_EQ(S.mean(), 5.0);
  // Sample variance of the classic data set: 32 / 7.
  EXPECT_NEAR(S.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(S.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunningStat, MatchesNaiveTwoPass) {
  std::vector<double> Data;
  for (int I = 0; I < 1000; ++I)
    Data.push_back(std::sin(I * 0.1) * 100.0 + 1e6);
  RunningStat S;
  for (double X : Data)
    S.push(X);
  double Mean = 0.0;
  for (double X : Data)
    Mean += X;
  Mean /= static_cast<double>(Data.size());
  double Var = 0.0;
  for (double X : Data)
    Var += (X - Mean) * (X - Mean);
  Var /= static_cast<double>(Data.size() - 1);
  EXPECT_NEAR(S.mean(), Mean, 1e-6);
  EXPECT_NEAR(S.variance(), Var, 1e-4);
}

TEST(RunningStat, ClearResets) {
  RunningStat S;
  S.push(1.0);
  S.push(2.0);
  S.clear();
  EXPECT_EQ(S.count(), 0u);
  EXPECT_DOUBLE_EQ(S.mean(), 0.0);
}

TEST(StudentT, TableSpotChecks) {
  EXPECT_NEAR(studentTCritical(1, ConfidenceLevel::CL95), 12.706, 1e-3);
  EXPECT_NEAR(studentTCritical(4, ConfidenceLevel::CL95), 2.776, 1e-3);
  EXPECT_NEAR(studentTCritical(10, ConfidenceLevel::CL90), 1.812, 1e-3);
  EXPECT_NEAR(studentTCritical(30, ConfidenceLevel::CL99), 2.750, 1e-3);
}

TEST(StudentT, LargeDfFallsBackToNormal) {
  EXPECT_NEAR(studentTCritical(1000, ConfidenceLevel::CL95), 1.960, 1e-3);
  EXPECT_NEAR(studentTCritical(1000, ConfidenceLevel::CL90), 1.645, 1e-3);
  EXPECT_NEAR(studentTCritical(1000, ConfidenceLevel::CL99), 2.576, 1e-3);
}

TEST(StudentT, CriticalValueDecreasesWithDf) {
  for (std::size_t Df = 1; Df < 30; ++Df)
    EXPECT_GT(studentTCritical(Df, ConfidenceLevel::CL95),
              studentTCritical(Df + 1, ConfidenceLevel::CL95));
}

TEST(ConfidenceInterval, UndefinedForSmallSamples) {
  RunningStat S;
  EXPECT_TRUE(std::isinf(confidenceHalfWidth(S, ConfidenceLevel::CL95)));
  S.push(1.0);
  EXPECT_TRUE(std::isinf(confidenceHalfWidth(S, ConfidenceLevel::CL95)));
}

TEST(ConfidenceInterval, KnownValue) {
  RunningStat S;
  for (double X : {10.0, 12.0, 14.0})
    S.push(X);
  // sd = 2, n = 3, t(2, 95%) = 4.303 -> half width = 4.303 * 2 / sqrt(3).
  EXPECT_NEAR(confidenceHalfWidth(S, ConfidenceLevel::CL95),
              4.303 * 2.0 / std::sqrt(3.0), 1e-3);
}

TEST(ConfidenceInterval, ZeroForIdenticalSamples) {
  RunningStat S;
  for (int I = 0; I < 5; ++I)
    S.push(7.0);
  EXPECT_DOUBLE_EQ(confidenceHalfWidth(S, ConfidenceLevel::CL95), 0.0);
  EXPECT_DOUBLE_EQ(relativeError(S, ConfidenceLevel::CL95), 0.0);
}

TEST(ConfidenceInterval, RelativeErrorInfiniteForZeroMean) {
  RunningStat S;
  S.push(-1.0);
  S.push(1.0);
  EXPECT_TRUE(std::isinf(relativeError(S, ConfidenceLevel::CL95)));
}

// The interval half-width must shrink roughly like 1/sqrt(n) as more
// observations with the same spread arrive.
class IntervalShrinkTest : public ::testing::TestWithParam<int> {};

TEST_P(IntervalShrinkTest, HalfWidthShrinks) {
  int N = GetParam();
  RunningStat Small, Large;
  for (int I = 0; I < N; ++I)
    Small.push(I % 2 == 0 ? 9.0 : 11.0);
  for (int I = 0; I < 4 * N; ++I)
    Large.push(I % 2 == 0 ? 9.0 : 11.0);
  EXPECT_LT(confidenceHalfWidth(Large, ConfidenceLevel::CL95),
            confidenceHalfWidth(Small, ConfidenceLevel::CL95));
}

INSTANTIATE_TEST_SUITE_P(Sizes, IntervalShrinkTest,
                         ::testing::Values(4, 8, 16, 32));

TEST(Median, OddAndEvenSizes) {
  std::vector<double> Odd = {3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(median(Odd), 2.0);
  std::vector<double> Even = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(Even), 2.5);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(Mad, KnownValue) {
  // Median 3, absolute deviations {2,1,0,1,2} -> median 1 -> 1.4826.
  std::vector<double> S = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_NEAR(medianAbsoluteDeviation(S), 1.4826, 1e-12);
}

TEST(Mad, ZeroForConstantData) {
  std::vector<double> S = {2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(medianAbsoluteDeviation(S), 0.0);
}

TEST(RejectOutliers, DropsSpikeKeepsBody) {
  std::vector<double> S = {1.0, 1.02, 0.98, 1.01, 0.99, 10.0};
  auto Kept = rejectOutliers(S);
  EXPECT_EQ(Kept.size(), 5u);
  for (double X : Kept)
    EXPECT_LT(X, 2.0);
}

TEST(RejectOutliers, CleanDataUntouched) {
  std::vector<double> S = {1.0, 1.1, 0.9, 1.05, 0.95};
  auto Kept = rejectOutliers(S);
  EXPECT_EQ(Kept.size(), S.size());
}

TEST(RejectOutliers, ZeroMadKeepsEverything) {
  std::vector<double> S = {5.0, 5.0, 5.0, 7.0};
  auto Kept = rejectOutliers(S);
  EXPECT_EQ(Kept.size(), 4u);
}
