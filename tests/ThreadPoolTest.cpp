//===-- tests/ThreadPoolTest.cpp - worker pool unit tests -----------------===//
//
// The pool underpins buildModelsParallel, so its contract is pinned here:
// results arrive through futures regardless of execution order, worker
// exceptions surface at future.get() (not std::terminate), and shutdown
// completes every queued task before joining — no abandoned futures.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

using namespace fupermod;

TEST(ThreadPool, ResultsIndependentOfExecutionOrder) {
  ThreadPool Pool(4);
  std::vector<std::future<int>> Futures;
  for (int I = 0; I < 100; ++I)
    Futures.push_back(Pool.submit([I] {
      if (I % 7 == 0) // Stagger some tasks so completion order scrambles.
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      return I * I;
    }));
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(Futures[static_cast<std::size_t>(I)].get(), I * I);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool Pool(2);
  std::future<int> Bad = Pool.submit(
      []() -> int { throw std::runtime_error("device exploded"); });
  std::future<int> Good = Pool.submit([] { return 42; });
  EXPECT_THROW(
      {
        try {
          Bad.get();
        } catch (const std::runtime_error &E) {
          EXPECT_STREQ(E.what(), "device exploded");
          throw;
        }
      },
      std::runtime_error);
  // A thrown task must not poison the pool for its siblings.
  EXPECT_EQ(Good.get(), 42);
}

TEST(ThreadPool, ShutdownCompletesQueuedTasks) {
  std::atomic<int> Completed{0};
  std::vector<std::future<void>> Futures;
  {
    // One worker and 50 slow-ish tasks: most are still queued when the
    // destructor runs, and the destructor must drain them all.
    ThreadPool Pool(1);
    for (int I = 0; I < 50; ++I)
      Futures.push_back(Pool.submit([&Completed] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        Completed.fetch_add(1, std::memory_order_relaxed);
      }));
  }
  EXPECT_EQ(Completed.load(), 50);
  for (std::future<void> &F : Futures)
    EXPECT_NO_THROW(F.get()); // Every future was fulfilled, none dropped.
}

TEST(ThreadPool, DrainWaitsForInFlightWork) {
  ThreadPool Pool(3);
  std::atomic<int> Completed{0};
  for (int I = 0; I < 30; ++I)
    Pool.submit([&Completed] {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      Completed.fetch_add(1, std::memory_order_relaxed);
    });
  Pool.drain();
  EXPECT_EQ(Completed.load(), 30);
  // The pool stays usable after a drain.
  EXPECT_EQ(Pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, SubmitAfterShutdownThrows) {
  ThreadPool Pool(2);
  Pool.shutdown();
  EXPECT_THROW(Pool.submit([] { return 1; }), std::runtime_error);
}

TEST(ThreadPool, WorkerCountClampedToAtLeastOne) {
  ThreadPool Pool(0);
  EXPECT_GE(Pool.workerCount(), 1u);
  EXPECT_EQ(Pool.submit([] { return 3; }).get(), 3);
}
