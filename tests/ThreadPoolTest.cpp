//===-- tests/ThreadPoolTest.cpp - worker pool unit tests -----------------===//
//
// The pool underpins buildModelsParallel, so its contract is pinned here:
// results arrive through futures regardless of execution order, worker
// exceptions surface at future.get() (not std::terminate), and explicit
// shutdown() completes every queued task before joining — no abandoned
// futures. The destructor, by contrast, cancels queued-but-unstarted
// tasks: their futures complete with broken_promise instead of hanging
// any waiter forever.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

using namespace fupermod;

TEST(ThreadPool, ResultsIndependentOfExecutionOrder) {
  ThreadPool Pool(4);
  std::vector<std::future<int>> Futures;
  for (int I = 0; I < 100; ++I)
    Futures.push_back(Pool.submit([I] {
      if (I % 7 == 0) // Stagger some tasks so completion order scrambles.
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      return I * I;
    }));
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(Futures[static_cast<std::size_t>(I)].get(), I * I);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool Pool(2);
  std::future<int> Bad = Pool.submit(
      []() -> int { throw std::runtime_error("device exploded"); });
  std::future<int> Good = Pool.submit([] { return 42; });
  EXPECT_THROW(
      {
        try {
          Bad.get();
        } catch (const std::runtime_error &E) {
          EXPECT_STREQ(E.what(), "device exploded");
          throw;
        }
      },
      std::runtime_error);
  // A thrown task must not poison the pool for its siblings.
  EXPECT_EQ(Good.get(), 42);
}

TEST(ThreadPool, ShutdownCompletesQueuedTasks) {
  std::atomic<int> Completed{0};
  std::vector<std::future<void>> Futures;
  {
    // One worker and 50 slow-ish tasks: most are still queued when
    // shutdown() runs, and shutdown() must drain them all.
    ThreadPool Pool(1);
    for (int I = 0; I < 50; ++I)
      Futures.push_back(Pool.submit([&Completed] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        Completed.fetch_add(1, std::memory_order_relaxed);
      }));
    Pool.shutdown();
  }
  EXPECT_EQ(Completed.load(), 50);
  for (std::future<void> &F : Futures)
    EXPECT_NO_THROW(F.get()); // Every future was fulfilled, none dropped.
}

TEST(ThreadPool, DestructorBreaksQueuedPromises) {
  // Destroying the pool without an explicit shutdown() cancels tasks
  // that never started: their futures must complete with broken_promise
  // rather than leave a waiter blocked forever. The task already running
  // still finishes (the worker is joined, not killed).
  std::promise<void> Release;
  std::shared_future<void> Gate = Release.get_future().share();
  std::atomic<bool> FirstRan{false};
  std::future<void> Running;
  std::vector<std::future<int>> Queued;
  // The gate opens only after a delay, so the destructor below runs
  // while the lone worker is still parked inside the first task and the
  // 8 queued tasks are untouched. The destructor cancels the queue
  // BEFORE joining, so the join then completes once the gate opens.
  std::thread Opener;
  {
    ThreadPool Pool(1);
    Running = Pool.submit([&FirstRan, Gate] {
      FirstRan.store(true, std::memory_order_release);
      Gate.wait(); // Hold the only worker until the queue has backlog.
    });
    while (!FirstRan.load(std::memory_order_acquire))
      std::this_thread::yield();
    for (int I = 0; I < 8; ++I)
      Queued.push_back(Pool.submit([I] { return I; }));
    Opener = std::thread([&Release] {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      Release.set_value();
    });
    // Pool destructor runs here with (up to) 8 tasks still queued.
  }
  Opener.join();
  EXPECT_NO_THROW(Running.get());
  int Cancelled = 0;
  for (std::future<int> &F : Queued) {
    try {
      (void)F.get(); // Tasks that squeezed in before cancellation.
    } catch (const std::future_error &E) {
      EXPECT_EQ(E.code(), std::future_errc::broken_promise);
      ++Cancelled;
    }
  }
  // The worker was parked on the gate while all 8 were queued, so the
  // destructor saw a non-empty queue; at least the tail is cancelled.
  EXPECT_GT(Cancelled, 0);
}

TEST(ThreadPool, DrainWaitsForInFlightWork) {
  ThreadPool Pool(3);
  std::atomic<int> Completed{0};
  for (int I = 0; I < 30; ++I)
    Pool.submit([&Completed] {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      Completed.fetch_add(1, std::memory_order_relaxed);
    });
  Pool.drain();
  EXPECT_EQ(Completed.load(), 30);
  // The pool stays usable after a drain.
  EXPECT_EQ(Pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, SubmitAfterShutdownThrows) {
  ThreadPool Pool(2);
  Pool.shutdown();
  EXPECT_THROW(Pool.submit([] { return 1; }), std::runtime_error);
}

TEST(ThreadPool, WorkerCountClampedToAtLeastOne) {
  ThreadPool Pool(0);
  EXPECT_GE(Pool.workerCount(), 1u);
  EXPECT_EQ(Pool.submit([] { return 3; }).get(), 3);
}
