//===-- tests/EndToEndTest.cpp - integration across the stack -------------===//
//
// Full-pipeline tests mirroring the paper's workflow: benchmark kernels on
// a heterogeneous (simulated) platform, build functional performance
// models, partition, and run the data-parallel applications.
//
//===----------------------------------------------------------------------===//

#include "apps/MatMul.h"
#include "core/Dynamic.h"
#include "core/Metrics.h"
#include "core/Partitioners.h"
#include "mpp/Runtime.h"
#include "sim/Cluster.h"

#include <gtest/gtest.h>

#include <memory>

using namespace fupermod;

namespace {

/// Builds full FPMs for every device by synchronised benchmarking on the
/// SPMD runtime — the paper's model-construction phase.
std::vector<std::unique_ptr<Model>>
buildModelsOnCluster(const Cluster &Cl, const char *Kind, double MaxSize,
                     int NumPoints) {
  std::vector<std::unique_ptr<Model>> Models(
      static_cast<std::size_t>(Cl.size()));
  for (int R = 0; R < Cl.size(); ++R)
    Models[static_cast<std::size_t>(R)] = makeModel(Kind);

  runSpmd(Cl.size(),
          [&](Comm &C) {
            SimDevice Dev = Cl.makeDevice(C.rank());
            SimDeviceBackend Backend(Dev, &C);
            Precision Prec;
            Prec.MinReps = 3;
            Prec.MaxReps = 8;
            Prec.TargetRelativeError = 0.03;
            for (int I = 1; I <= NumPoints; ++I) {
              double D = MaxSize * I / NumPoints;
              Point P = runBenchmark(Backend, D, Prec, &C);
              std::vector<Point> All =
                  C.allgatherv(std::span<const Point>(&P, 1));
              if (C.rank() == 0)
                for (int Q = 0; Q < C.size(); ++Q)
                  Models[static_cast<std::size_t>(Q)]->update(
                      All[static_cast<std::size_t>(Q)]);
            }
          },
          Cl.makeCostModel());
  return Models;
}

} // namespace

TEST(EndToEnd, ModelsBuiltOverRuntimeMatchProfiles) {
  Cluster Cl = makeTwoDeviceCluster();
  Cl.NoiseSigma = 0.02;
  auto Models = buildModelsOnCluster(Cl, "akima", 4000.0, 16);
  for (int R = 0; R < Cl.size(); ++R) {
    for (double X : {500.0, 1500.0, 3500.0}) {
      double True = Cl.Devices[static_cast<std::size_t>(R)].time(X);
      EXPECT_NEAR(Models[static_cast<std::size_t>(R)]->timeAt(X), True,
                  0.10 * True)
          << "device " << R << " size " << X;
    }
  }
}

TEST(EndToEnd, StaticFpmPartitioningNearOptimal) {
  Cluster Cl = makeHclLikeCluster(true);
  Cl.NoiseSigma = 0.02;
  const std::int64_t D = 20000;
  auto Models = buildModelsOnCluster(Cl, "piecewise", 1.2 * D, 24);
  std::vector<Model *> Ptrs;
  for (auto &M : Models)
    Ptrs.push_back(M.get());

  Dist Out;
  ASSERT_TRUE(partitionGeometric(D, Ptrs, Out));
  auto Times = trueTimes(Out, Cl.Devices);
  double Opt = optimalMakespan(D, Cl.Devices);
  EXPECT_LT(makespan(Times), 1.15 * Opt);
}

TEST(EndToEnd, FpmBeatsCpmAcrossTheCliff) {
  // The headline claim: on sizes where per-device allocations straddle
  // speed cliffs, CPM-based partitioning (speeds probed at one size) is
  // visibly worse than FPM-based partitioning.
  Cluster Cl = makeTwoDeviceCluster();
  Cl.NoiseSigma = 0.0;
  const std::int64_t D = 6000;

  auto Fpm = buildModelsOnCluster(Cl, "piecewise", 1.2 * D, 24);
  std::vector<Model *> FpmPtrs;
  for (auto &M : Fpm)
    FpmPtrs.push_back(M.get());

  // CPM built the traditional way: one small serial benchmark per device.
  std::vector<std::unique_ptr<Model>> Cpm;
  std::vector<Model *> CpmPtrs;
  for (int R = 0; R < Cl.size(); ++R) {
    auto M = makeModel("cpm");
    Point P;
    P.Units = 200.0;
    P.Time = Cl.Devices[static_cast<std::size_t>(R)].time(200.0);
    P.Reps = 1;
    M->update(P);
    Cpm.push_back(std::move(M));
    CpmPtrs.push_back(Cpm.back().get());
  }

  Dist FpmDist, CpmDist;
  ASSERT_TRUE(partitionGeometric(D, FpmPtrs, FpmDist));
  ASSERT_TRUE(partitionConstant(D, CpmPtrs, CpmDist));
  double FpmSpan = makespan(trueTimes(FpmDist, Cl.Devices));
  double CpmSpan = makespan(trueTimes(CpmDist, Cl.Devices));
  EXPECT_LT(FpmSpan, 0.9 * CpmSpan);
}

TEST(EndToEnd, FpmPartitionedMatMulFasterThanEven) {
  Cluster Cl = makeHclLikeCluster(false);
  Cl.NoiseSigma = 0.01;
  const int N = 12; // 12x12 blocks.
  const std::int64_t D = static_cast<std::int64_t>(N) * N;

  auto Models = buildModelsOnCluster(Cl, "piecewise", 1.5 * D, 12);
  std::vector<Model *> Ptrs;
  for (auto &M : Models)
    Ptrs.push_back(M.get());
  Dist Out;
  ASSERT_TRUE(partitionGeometric(D, Ptrs, Out));

  std::vector<double> Areas;
  for (const Part &P : Out.Parts)
    Areas.push_back(static_cast<double>(P.Units));
  auto Balanced = scaleToGrid(partitionColumnBased(Areas), N);
  std::vector<double> EvenAreas(static_cast<std::size_t>(Cl.size()), 1.0);
  auto Even = scaleToGrid(partitionColumnBased(EvenAreas), N);

  MatMulOptions O;
  O.NBlocks = N;
  O.BlockSize = 4;
  O.Verify = true;
  MatMulReport RBal = runParallelMatMul(Cl, Balanced, O);
  MatMulReport REven = runParallelMatMul(Cl, Even, O);
  EXPECT_LT(RBal.MaxError, 1e-9);
  EXPECT_LT(REven.MaxError, 1e-9);
  EXPECT_LT(RBal.Makespan, REven.Makespan);
}

TEST(EndToEnd, DynamicPartitioningCheaperThanFullModels) {
  // Dynamic partial estimation must reach a competitive balance while
  // spending far less virtual time on benchmarking than full model
  // construction.
  Cluster Cl = makeTwoDeviceCluster();
  Cl.NoiseSigma = 0.01;
  const std::int64_t D = 4000;

  double DynamicCost = 0.0;
  std::vector<std::int64_t> DynUnits(2, 0);
  runSpmd(2,
          [&](Comm &C) {
            SimDevice Dev = Cl.makeDevice(C.rank());
            SimDeviceBackend Backend(Dev, &C);
            DynamicContext Ctx(partitionGeometric, "piecewise", D, 2);
            Precision Prec;
            Prec.MinReps = 1;
            Prec.MaxReps = 3;
            Prec.TargetRelativeError = 0.05;
            runDynamicPartitioning(Ctx, C, Backend, Prec, 0.02, 20);
            C.barrier();
            if (C.rank() == 0) {
              DynamicCost = C.time();
              DynUnits[0] = Ctx.dist().Parts[0].Units;
              DynUnits[1] = Ctx.dist().Parts[1].Units;
            }
          },
          Cl.makeCostModel());

  // Full-model construction cost on the same platform.
  double FullCost = 0.0;
  runSpmd(2,
          [&](Comm &C) {
            SimDevice Dev = Cl.makeDevice(C.rank());
            SimDeviceBackend Backend(Dev, &C);
            Precision Prec;
            Prec.MinReps = 1;
            Prec.MaxReps = 3;
            Prec.TargetRelativeError = 0.05;
            for (int I = 1; I <= 24; ++I)
              runBenchmark(Backend, 1.2 * D * I / 24.0, Prec, &C);
            C.barrier();
            if (C.rank() == 0)
              FullCost = C.time();
          },
          Cl.makeCostModel());

  EXPECT_LT(DynamicCost, FullCost);

  Dist Final;
  Final.Total = D;
  Final.Parts.resize(2);
  Final.Parts[0].Units = DynUnits[0];
  Final.Parts[1].Units = DynUnits[1];
  double Opt = optimalMakespan(D, Cl.Devices);
  EXPECT_LT(makespan(trueTimes(Final, Cl.Devices)), 1.2 * Opt);
}
