//===-- tests/PartitionersTest.cpp - static partitioner tests -------------===//

#include "core/Partitioners.h"

#include "sim/Cluster.h"

#include <gtest/gtest.h>

#include <memory>

using namespace fupermod;

namespace {

Point makePoint(double Units, double Time) {
  Point P;
  P.Units = Units;
  P.Time = Time;
  P.Reps = 3;
  return P;
}

/// Builds one model per profile, fed with exact measurements on a log-ish
/// grid up to MaxSize.
std::vector<std::unique_ptr<Model>>
buildModels(const char *Kind, std::span<const DeviceProfile> Profiles,
            double MaxSize, int NumPoints = 24) {
  std::vector<std::unique_ptr<Model>> Models;
  for (const DeviceProfile &P : Profiles) {
    auto M = makeModel(Kind);
    for (int I = 1; I <= NumPoints; ++I) {
      double D = MaxSize * I / NumPoints;
      M->update(makePoint(D, P.time(D)));
    }
    Models.push_back(std::move(M));
  }
  return Models;
}

std::vector<Model *> ptrs(std::vector<std::unique_ptr<Model>> &Models) {
  std::vector<Model *> Out;
  for (auto &M : Models)
    Out.push_back(M.get());
  return Out;
}

} // namespace

TEST(ConstantPartitioner, ProportionalToSpeeds) {
  // Speeds 100 and 300 -> split 1:3.
  std::vector<std::unique_ptr<Model>> Models;
  Models.push_back(makeModel("cpm"));
  Models.push_back(makeModel("cpm"));
  Models[0]->update(makePoint(100.0, 1.0));
  Models[1]->update(makePoint(300.0, 1.0));
  auto P = ptrs(Models);
  Dist Out;
  ASSERT_TRUE(partitionConstant(400, P, Out));
  EXPECT_EQ(Out.Parts[0].Units, 100);
  EXPECT_EQ(Out.Parts[1].Units, 300);
  EXPECT_EQ(Out.sum(), 400);
  // Predicted equal completion times for proportional speeds.
  EXPECT_NEAR(Out.Parts[0].PredictedTime, Out.Parts[1].PredictedTime, 1e-9);
}

TEST(ConstantPartitioner, RejectsUnfittedModels) {
  std::vector<std::unique_ptr<Model>> Models;
  Models.push_back(makeModel("cpm"));
  auto P = ptrs(Models);
  Dist Out;
  EXPECT_FALSE(partitionConstant(10, P, Out));
}

TEST(ConstantPartitioner, ZeroTotal) {
  std::vector<std::unique_ptr<Model>> Models;
  Models.push_back(makeModel("cpm"));
  Models[0]->update(makePoint(10.0, 1.0));
  auto P = ptrs(Models);
  Dist Out;
  ASSERT_TRUE(partitionConstant(0, P, Out));
  EXPECT_EQ(Out.sum(), 0);
}

TEST(GeometricPartitioner, EqualisesPredictedTimes) {
  Cluster C = makeTwoDeviceCluster();
  auto Models = buildModels("piecewise", C.Devices, 8000.0);
  auto P = ptrs(Models);
  Dist Out;
  ASSERT_TRUE(partitionGeometric(5000, P, Out));
  EXPECT_EQ(Out.sum(), 5000);
  // Equal predicted completion times up to one-unit rounding.
  double T0 = Out.Parts[0].PredictedTime;
  double T1 = Out.Parts[1].PredictedTime;
  EXPECT_NEAR(T0, T1, 0.02 * std::max(T0, T1));
}

TEST(GeometricPartitioner, FastDeviceGetsMoreBeforeItsCliff) {
  // At D = 1500 both allocations sit left of device 0's cache cliff, so
  // the nominally fast device must take the visibly bigger share. (At
  // much larger D its post-cliff speed drops below the slow device's and
  // the split legitimately flips — that case is covered by the
  // equal-time check above.)
  Cluster C = makeTwoDeviceCluster();
  auto Models = buildModels("piecewise", C.Devices, 8000.0);
  auto P = ptrs(Models);
  Dist Out;
  ASSERT_TRUE(partitionGeometric(1500, P, Out));
  EXPECT_GT(Out.Parts[0].Units, Out.Parts[1].Units);
}

TEST(GeometricPartitioner, SingleProcessTakesAll) {
  Cluster C = makeTwoDeviceCluster();
  auto Models = buildModels("piecewise",
                            std::span(C.Devices.data(), 1), 4000.0);
  auto P = ptrs(Models);
  Dist Out;
  ASSERT_TRUE(partitionGeometric(1234, P, Out));
  ASSERT_EQ(Out.Parts.size(), 1u);
  EXPECT_EQ(Out.Parts[0].Units, 1234);
}

TEST(NumericalPartitioner, EqualisesPredictedTimes) {
  Cluster C = makeTwoDeviceCluster();
  auto Models = buildModels("akima", C.Devices, 8000.0);
  auto P = ptrs(Models);
  Dist Out;
  ASSERT_TRUE(partitionNumerical(5000, P, Out));
  EXPECT_EQ(Out.sum(), 5000);
  double T0 = Out.Parts[0].PredictedTime;
  double T1 = Out.Parts[1].PredictedTime;
  EXPECT_NEAR(T0, T1, 0.02 * std::max(T0, T1));
}

TEST(NumericalPartitioner, AgreesWithGeometricOnMonotoneData) {
  Cluster C = makeTwoDeviceCluster();
  auto PiecewiseModels = buildModels("piecewise", C.Devices, 8000.0);
  auto AkimaModels = buildModels("akima", C.Devices, 8000.0);
  auto PG = ptrs(PiecewiseModels);
  auto PN = ptrs(AkimaModels);
  Dist Geo, Num;
  ASSERT_TRUE(partitionGeometric(6000, PG, Geo));
  ASSERT_TRUE(partitionNumerical(6000, PN, Num));
  // Same data, different interpolants: shares agree within a few percent.
  EXPECT_NEAR(static_cast<double>(Geo.Parts[0].Units),
              static_cast<double>(Num.Parts[0].Units), 0.05 * 6000);
}

TEST(AllPartitioners, HomogeneousClusterGetsEvenSplit) {
  Cluster C = makeUniformCluster(4, 100.0);
  for (const char *Spec :
       {"constant", "geometric", "numerical"}) {
    const char *Kind = std::string(Spec) == "constant" ? "cpm" : "akima";
    auto Models = buildModels(Kind, C.Devices, 2000.0);
    auto P = ptrs(Models);
    Dist Out;
    ASSERT_TRUE(findPartitioner(Spec)(1000, P, Out)) << Spec;
    for (const Part &Pt : Out.Parts)
      EXPECT_EQ(Pt.Units, 250) << Spec;
  }
}

// Property sweep: every algorithm preserves the total and achieves a low
// predicted imbalance on the heterogeneous HCL-like cluster, across a
// range of problem sizes spanning the devices' cliffs.
struct SweepCase {
  const char *Algorithm;
  const char *ModelKind;
  std::int64_t Total;
};

class PartitionerSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(PartitionerSweep, SumPreservedAndBalanced) {
  const SweepCase &Case = GetParam();
  Cluster C = makeHclLikeCluster(true);
  auto Models = buildModels(Case.ModelKind, C.Devices,
                            static_cast<double>(Case.Total) * 1.2, 32);
  auto P = ptrs(Models);
  Dist Out;
  ASSERT_TRUE(findPartitioner(Case.Algorithm)(Case.Total, P, Out));
  EXPECT_EQ(Out.sum(), Case.Total);
  for (const Part &Pt : Out.Parts)
    EXPECT_GE(Pt.Units, 0);

  // Functional algorithms must equalise the *predicted* times tightly.
  if (std::string(Case.Algorithm) != "constant") {
    double MaxT = 0.0, MinT = 1e300;
    for (const Part &Pt : Out.Parts) {
      if (Pt.Units == 0)
        continue;
      MaxT = std::max(MaxT, Pt.PredictedTime);
      MinT = std::min(MinT, Pt.PredictedTime);
    }
    EXPECT_LT((MaxT - MinT) / MaxT, 0.10)
        << Case.Algorithm << " D=" << Case.Total;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PartitionerSweep,
    ::testing::Values(SweepCase{"constant", "cpm", 3000},
                      SweepCase{"constant", "cpm", 30000},
                      SweepCase{"geometric", "piecewise", 3000},
                      SweepCase{"geometric", "piecewise", 12000},
                      SweepCase{"geometric", "piecewise", 30000},
                      SweepCase{"numerical", "akima", 3000},
                      SweepCase{"numerical", "akima", 12000},
                      SweepCase{"numerical", "akima", 30000}));

// Ground-truth validation: for two processes the whole solution space can
// be enumerated; the geometric and numerical algorithms must match the
// brute-force optimum of their own models' predictions (up to one unit of
// rounding).
class BruteForceTest : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(BruteForceTest, MatchesExhaustiveOptimum) {
  std::int64_t D = GetParam();
  Cluster C = makeTwoDeviceCluster();
  auto Piecewise = buildModels("piecewise", C.Devices, 1.5 * D);
  auto Akima = buildModels("akima", C.Devices, 1.5 * D);

  auto BruteForce = [&](std::vector<std::unique_ptr<Model>> &Models) {
    double Best = 1e300;
    for (std::int64_t X = 0; X <= D; ++X) {
      double T0 = X > 0 ? Models[0]->timeAt(static_cast<double>(X)) : 0.0;
      double T1 = D - X > 0
                      ? Models[1]->timeAt(static_cast<double>(D - X))
                      : 0.0;
      Best = std::min(Best, std::max(T0, T1));
    }
    return Best;
  };

  auto P = ptrs(Piecewise);
  Dist Geo;
  ASSERT_TRUE(partitionGeometric(D, P, Geo));
  double GeoSpan = std::max(Geo.Parts[0].PredictedTime,
                            Geo.Parts[1].PredictedTime);
  EXPECT_LE(GeoSpan, 1.02 * BruteForce(Piecewise)) << "D=" << D;

  auto PA = ptrs(Akima);
  Dist Num;
  ASSERT_TRUE(partitionNumerical(D, PA, Num));
  double NumSpan = std::max(Num.Parts[0].PredictedTime,
                            Num.Parts[1].PredictedTime);
  EXPECT_LE(NumSpan, 1.02 * BruteForce(Akima)) << "D=" << D;
}

INSTANTIATE_TEST_SUITE_P(Totals, BruteForceTest,
                         ::testing::Values(50, 200, 1000, 3000));
