//===-- tests/ParallelBuildTest.cpp - parallel build determinism ----------===//
//
// buildModelsParallel must be a pure parallelisation: for a fixed seed,
// the Point sets it produces with 1, 4, or 8 workers are bit-identical
// to the serial build, including on a cluster with fault lines (the
// shipped examples/sample.cluster injects a GPU slowdown). Determinism
// comes from per-rank RNG streams (Cluster::makeDevice seeds with
// Seed + Rank), so any scheduling of the worker pool observes the same
// measurement sequence — this test is the tripwire that keeps it true.
//
//===----------------------------------------------------------------------===//

#include "core/Benchmark.h"
#include "sim/Cluster.h"
#include "sim/ClusterIO.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

using namespace fupermod;

namespace {

// Point carries doubles; compare bit patterns, not values, so that even
// a sign-of-zero or NaN-payload difference between schedules would trip.
bool bitIdentical(const Point &A, const Point &B) {
  return std::memcmp(&A.Units, &B.Units, sizeof(double)) == 0 &&
         std::memcmp(&A.Time, &B.Time, sizeof(double)) == 0 &&
         A.Reps == B.Reps &&
         std::memcmp(&A.ConfidenceInterval, &B.ConfidenceInterval,
                     sizeof(double)) == 0 &&
         A.Status == B.Status;
}

void expectIdentical(const std::vector<BuiltModel> &Serial,
                     const std::vector<BuiltModel> &Parallel, int Jobs) {
  ASSERT_EQ(Serial.size(), Parallel.size()) << "jobs=" << Jobs;
  for (std::size_t R = 0; R < Serial.size(); ++R) {
    ASSERT_EQ(Serial[R].Raw.size(), Parallel[R].Raw.size())
        << "jobs=" << Jobs << " rank " << R;
    for (std::size_t I = 0; I < Serial[R].Raw.size(); ++I)
      EXPECT_TRUE(bitIdentical(Serial[R].Raw[I], Parallel[R].Raw[I]))
          << "jobs=" << Jobs << " rank " << R << " point " << I
          << ": units " << Parallel[R].Raw[I].Units << " time "
          << Parallel[R].Raw[I].Time << " vs serial "
          << Serial[R].Raw[I].Time;
  }
}

ModelBuildPlan smallPlan() {
  ModelBuildPlan Plan;
  Plan.Kind = "piecewise";
  Plan.MinSize = 100.0;
  Plan.MaxSize = 5000.0;
  Plan.NumPoints = 8;
  Plan.Prec.MinReps = 3;
  Plan.Prec.MaxReps = 6;
  return Plan;
}

void checkAllJobCounts(const Cluster &Cl, const ModelBuildPlan &Plan) {
  ModelBuildPlan Serial = Plan;
  Serial.Jobs = 1;
  std::vector<BuiltModel> Reference = buildModelsParallel(Cl, Serial);
  for (int Jobs : {4, 8}) {
    ModelBuildPlan P = Plan;
    P.Jobs = Jobs;
    expectIdentical(Reference, buildModelsParallel(Cl, P), Jobs);
  }
}

} // namespace

TEST(ParallelBuild, BitIdenticalAcrossWorkerCounts) {
  Cluster Cl = makeHeterogeneousCluster(6, /*Variant=*/7);
  Cl.NoiseSigma = 0.03; // Noisy measurements: determinism must not rely
                        // on noise-free repeatability.
  checkAllJobCounts(Cl, smallPlan());
}

TEST(ParallelBuild, BitIdenticalOnSampleClusterWithFaults) {
  std::string Error;
  std::optional<Cluster> Cl = resolveCluster(
      FUPERMOD_SOURCE_DIR "/examples/sample.cluster", &Error);
  ASSERT_TRUE(Cl.has_value()) << Error;
  Cl->NoiseSigma = 0.02;
  // The sample cluster carries a fault line (GPU slowdown at t=3600);
  // fault plans are per-device state and must replay identically too.
  checkAllJobCounts(*Cl, smallPlan());
}

TEST(ParallelBuild, ModelsFitTheSamePoints) {
  // The fitted models, not just the raw points, must agree: same points
  // in, same knots out, independent of worker count.
  Cluster Cl = makeHeterogeneousCluster(4, /*Variant=*/3);
  ModelBuildPlan Plan = smallPlan();
  Plan.Jobs = 1;
  std::vector<BuiltModel> Serial = buildModelsParallel(Cl, Plan);
  Plan.Jobs = 4;
  std::vector<BuiltModel> Parallel = buildModelsParallel(Cl, Plan);
  for (std::size_t R = 0; R < Serial.size(); ++R) {
    ASSERT_EQ(Serial[R].M->points().size(),
              Parallel[R].M->points().size());
    for (double X : {150.0, 900.0, 2500.0, 4800.0})
      EXPECT_DOUBLE_EQ(Serial[R].M->timeAt(X), Parallel[R].M->timeAt(X))
          << "rank " << R << " size " << X;
  }
}
