//===-- tests/OptionsTest.cpp - CLI parser tests --------------------------===//

#include "support/Options.h"

#include <gtest/gtest.h>

using namespace fupermod;

namespace {

Options parse(std::initializer_list<const char *> Args) {
  std::vector<const char *> Argv(Args.begin(), Args.end());
  return Options(static_cast<int>(Argv.size()), Argv.data());
}

} // namespace

TEST(Options, KeyValuePairs) {
  Options O = parse({"prog", "--kind", "akima", "--total", "500"});
  EXPECT_EQ(O.program(), "prog");
  EXPECT_TRUE(O.has("kind"));
  EXPECT_EQ(O.get("kind"), "akima");
  EXPECT_EQ(O.getInt("total", 0), 500);
}

TEST(Options, EqualsSyntax) {
  Options O = parse({"prog", "--min=1.5", "--name=foo"});
  EXPECT_DOUBLE_EQ(O.getDouble("min", 0.0), 1.5);
  EXPECT_EQ(O.get("name"), "foo");
}

TEST(Options, BareFlags) {
  Options O = parse({"prog", "--verbose", "--out", "--x", "1"});
  EXPECT_TRUE(O.has("verbose"));
  EXPECT_EQ(O.get("verbose", "def"), "");
  // A flag followed by another flag captures no value.
  EXPECT_EQ(O.get("out"), "");
  EXPECT_EQ(O.getInt("x", 0), 1);
}

TEST(Options, PositionalArguments) {
  Options O = parse({"prog", "a.fpm", "--total", "10", "b.fpm"});
  ASSERT_EQ(O.positional().size(), 2u);
  EXPECT_EQ(O.positional()[0], "a.fpm");
  EXPECT_EQ(O.positional()[1], "b.fpm");
}

TEST(Options, DefaultsWhenAbsent) {
  Options O = parse({"prog"});
  EXPECT_FALSE(O.has("kind"));
  EXPECT_EQ(O.get("kind", "piecewise"), "piecewise");
  EXPECT_DOUBLE_EQ(O.getDouble("eps", 0.05), 0.05);
  EXPECT_EQ(O.getInt("n", 7), 7);
}

TEST(Options, MalformedNumbersFallBack) {
  Options O = parse({"prog", "--n", "12x", "--d", "abc"});
  EXPECT_EQ(O.getInt("n", -1), -1);
  EXPECT_DOUBLE_EQ(O.getDouble("d", 2.5), 2.5);
}

TEST(Options, LastOccurrenceWins) {
  Options O = parse({"prog", "--k", "1", "--k", "2"});
  EXPECT_EQ(O.getInt("k", 0), 2);
}

TEST(Options, CheckedAccessorsAcceptNumbersAndDefaults) {
  Options O = parse({"prog", "--n", "12", "--d", "1.5"});
  Result<std::int64_t> N = O.checkedInt("n", -1);
  ASSERT_TRUE(N.ok());
  EXPECT_EQ(N.value(), 12);
  Result<double> D = O.checkedDouble("d", 0.0);
  ASSERT_TRUE(D.ok());
  EXPECT_DOUBLE_EQ(D.value(), 1.5);
  // Absent keys still yield the default, like the lenient accessors.
  Result<std::int64_t> Absent = O.checkedInt("m", 7);
  ASSERT_TRUE(Absent.ok());
  EXPECT_EQ(Absent.value(), 7);
}

TEST(Options, CheckedAccessorsRejectMalformedValues) {
  Options O = parse({"prog", "--n", "12x", "--d", "abc", "--e="});
  Result<std::int64_t> N = O.checkedInt("n", -1);
  ASSERT_FALSE(N.ok());
  EXPECT_EQ(N.error(), "option --n: expected an integer, got '12x'");
  Result<double> D = O.checkedDouble("d", 2.5);
  ASSERT_FALSE(D.ok());
  EXPECT_EQ(D.error(), "option --d: expected a number, got 'abc'");
  Result<std::int64_t> E = O.checkedInt("e", 0);
  ASSERT_FALSE(E.ok());
  EXPECT_EQ(E.error(), "option --e requires an integer value");
}

TEST(Options, UnknownKeysFindsMistypedFlags) {
  Options O = parse({"prog", "--total", "5", "--exlpain", "--stats"});
  std::vector<std::string> Unknown =
      O.unknownKeys({"total", "explain", "stats"});
  ASSERT_EQ(Unknown.size(), 1u);
  EXPECT_EQ(Unknown[0], "exlpain");
  EXPECT_TRUE(O.unknownKeys({"total", "exlpain", "stats"}).empty());
}
