//===-- tests/FeasibilityTest.cpp - device memory-limit handling ----------===//
//
// The paper (Section 4.1) notes that GPU kernels can only be measured
// within the range of problem sizes that fit device memory. These tests
// cover the framework's handling of that: failed measurements record a
// feasibility limit on the model, and every partitioning algorithm keeps
// allocations strictly below it.
//
//===----------------------------------------------------------------------===//

#include "core/Dynamic.h"
#include "core/Partitioners.h"
#include "mpp/Runtime.h"
#include "sim/Cluster.h"

#include <gtest/gtest.h>

using namespace fupermod;

namespace {

Point makePoint(double Units, double Time) {
  Point P;
  P.Units = Units;
  P.Time = Time;
  P.Reps = 1;
  return P;
}

Point failPoint(double Units) {
  Point P;
  P.Units = Units;
  P.Time = std::numeric_limits<double>::infinity();
  P.Reps = 0;
  return P;
}

} // namespace

TEST(FeasibleLimit, UnlimitedByDefault) {
  ConstantModel M;
  M.update(makePoint(10.0, 1.0));
  EXPECT_TRUE(std::isinf(M.feasibleLimit()));
}

TEST(FeasibleLimit, RecordsSmallestFailure) {
  ConstantModel M;
  M.update(failPoint(800.0));
  M.update(failPoint(500.0));
  M.update(failPoint(900.0));
  EXPECT_DOUBLE_EQ(M.feasibleLimit(), 500.0);
}

TEST(FeasibleLimit, SuccessRaisesAStaleLimit) {
  ConstantModel M;
  M.update(failPoint(500.0));
  M.update(makePoint(600.0, 1.0)); // Succeeded beyond the old limit.
  EXPECT_GT(M.feasibleLimit(), 600.0);
}

TEST(MaxUnitsUnderCap, StrictlyBelowTheCap) {
  EXPECT_EQ(maxUnitsUnderCap(10.0), 9);
  EXPECT_EQ(maxUnitsUnderCap(10.5), 10);
  EXPECT_EQ(maxUnitsUnderCap(0.5), 0);
  EXPECT_EQ(maxUnitsUnderCap(std::numeric_limits<double>::infinity()),
            std::numeric_limits<std::int64_t>::max());
}

TEST(RoundSharesCapped, MovesExcessToHeadroom) {
  std::vector<double> Shares = {90.0, 10.0};
  std::vector<double> Caps = {50.0,
                              std::numeric_limits<double>::infinity()};
  auto Units = roundSharesCapped(Shares, 100, Caps);
  EXPECT_EQ(Units[0], 49); // Strictly below the infeasible size 50.
  EXPECT_EQ(Units[1], 51);
}

TEST(RoundSharesCapped, SaturatesGracefully) {
  std::vector<double> Shares = {10.0, 10.0};
  std::vector<double> Caps = {6.0, 6.0}; // Max 5 + 5 = 10 < 20.
  auto Units = roundSharesCapped(Shares, 20, Caps);
  EXPECT_EQ(Units[0] + Units[1], 10);
  EXPECT_LE(Units[0], 5);
  EXPECT_LE(Units[1], 5);
}

namespace {

/// Two constant-speed devices; device 1 fails above 300 units.
std::vector<std::unique_ptr<Model>> limitedPair() {
  std::vector<std::unique_ptr<Model>> Models;
  for (int I = 0; I < 2; ++I) {
    auto M = makeModel("piecewise");
    M->update(makePoint(100.0, 1.0));
    M->update(makePoint(200.0, 2.0));
    Models.push_back(std::move(M));
  }
  Models[1]->update(failPoint(300.0));
  return Models;
}

std::vector<Model *> ptrs(std::vector<std::unique_ptr<Model>> &Models) {
  std::vector<Model *> Out;
  for (auto &M : Models)
    Out.push_back(M.get());
  return Out;
}

} // namespace

class CappedPartitionerTest
    : public ::testing::TestWithParam<const char *> {};

TEST_P(CappedPartitionerTest, NeverExceedsTheLimit) {
  auto Models = limitedPair();
  auto P = ptrs(Models);
  Dist Out;
  // Equal speeds would split 500/500; device 1 is capped below 300.
  ASSERT_TRUE(findPartitioner(GetParam())(1000, P, Out));
  EXPECT_EQ(Out.sum(), 1000);
  EXPECT_LT(Out.Parts[1].Units, 300);
  EXPECT_EQ(Out.Parts[0].Units, 1000 - Out.Parts[1].Units);
}

TEST_P(CappedPartitionerTest, FailsWhenCapacityInsufficient) {
  auto Models = limitedPair();
  Models[0]->update(failPoint(400.0)); // Both limited: 399 + 299 < 1000.
  auto P = ptrs(Models);
  Dist Out;
  EXPECT_FALSE(findPartitioner(GetParam())(1000, P, Out));
}

INSTANTIATE_TEST_SUITE_P(Algorithms, CappedPartitionerTest,
                         ::testing::Values("constant", "geometric",
                                           "numerical"));

TEST(Feasibility, DynamicPartitioningRespectsGpuMemory) {
  // A GPU without out-of-core support: sizes above its memory fail to
  // benchmark; dynamic partitioning must discover the limit and keep the
  // GPU's share below it while still balancing the rest.
  Cluster Cl;
  Cl.Devices = {makeGpuProfile("gpu", 2000.0, 0.01, /*MemLimit=*/900.0,
                               /*OutOfCore=*/0.0),
                makeConstantProfile("cpu", 300.0)};
  Cl.NodeOfRank = {0, 0};
  Cl.NoiseSigma = 0.0;
  const std::int64_t D = 2400;

  std::vector<std::int64_t> Final(2, 0);
  runSpmd(2,
          [&](Comm &C) {
            SimDevice Dev = Cl.makeDevice(C.rank());
            SimDeviceBackend Backend(Dev, &C);
            DynamicContext Ctx(partitionGeometric, "piecewise", D, 2);
            Precision Prec;
            Prec.MinReps = 1;
            Prec.MaxReps = 1;
            runDynamicPartitioning(Ctx, C, Backend, Prec, 0.01, 40);
            if (C.rank() == 0) {
              Final[0] = Ctx.dist().Parts[0].Units;
              Final[1] = Ctx.dist().Parts[1].Units;
            }
          },
          Cl.makeCostModel());

  EXPECT_EQ(Final[0] + Final[1], D);
  // The naive speed split (GPU is much faster) would give the GPU far
  // more than its memory holds; the discovered limit caps it.
  EXPECT_LE(Final[0], 900);
  EXPECT_GE(Final[0], 600);
}
