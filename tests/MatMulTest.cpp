//===-- tests/MatMulTest.cpp - parallel matmul tests ----------------------===//

#include "apps/AdaptiveMatMul.h"

#include "blas/Gemm.h"
#include "support/ThreadPool.h"

#include <cstring>
#include <gtest/gtest.h>

using namespace fupermod;

namespace {

MatMulOptions smallOptions() {
  MatMulOptions O;
  O.NBlocks = 6;
  O.BlockSize = 4;
  O.Verify = true;
  return O;
}

} // namespace

TEST(Gemm, NaiveMatchesBlocked) {
  const std::size_t M = 17, N = 23, K = 9;
  std::vector<double> A(M * K), B(K * N), C1(M * N, 0.0), C2(M * N, 0.0);
  fillDeterministic(A, 1);
  fillDeterministic(B, 2);
  gemmNaive(M, N, K, A, B, C1);
  gemmBlocked(M, N, K, A, B, C2, 8);
  EXPECT_LT(maxAbsDiff(C1, C2), 1e-12);
}

TEST(Gemm, AccumulatesIntoC) {
  std::vector<double> A = {1.0}, B = {2.0}, C = {10.0};
  gemmNaive(1, 1, 1, A, B, C);
  EXPECT_DOUBLE_EQ(C[0], 12.0);
}

TEST(Gemm, ParallelBitIdenticalToBlocked) {
  // The row-band decomposition must not change any element's accumulation
  // order, so the parallel kernel is bit-identical, not merely close.
  ThreadPool Pool(3);
  for (std::size_t M : {1u, 5u, 64u, 131u}) {
    const std::size_t N = 37, K = 29;
    std::vector<double> A(M * K), B(K * N), C1(M * N, 0.5), C2(M * N, 0.5);
    fillDeterministic(A, 3);
    fillDeterministic(B, 4);
    gemmBlocked(M, N, K, A, B, C1, 16);
    gemmParallel(M, N, K, A, B, C2, Pool, 16);
    EXPECT_EQ(0, std::memcmp(C1.data(), C2.data(), C1.size() * sizeof(double)))
        << "M=" << M;
  }
}

TEST(Gemm, ThreadSpeedupIsMonotoneAndBounded) {
  EXPECT_DOUBLE_EQ(gemmThreadSpeedup(1), 1.0);
  double Prev = 1.0;
  for (unsigned T : {2u, 4u, 8u, 16u}) {
    double S = gemmThreadSpeedup(T);
    EXPECT_GT(S, Prev);
    EXPECT_LT(S, static_cast<double>(T));
    Prev = S;
  }
}

TEST(ParallelMatMul, SingleRankMatchesSerial) {
  Cluster Cl = makeUniformCluster(1, 100.0);
  Cl.NoiseSigma = 0.0;
  std::vector<GridRect> Rects = {{0, 0, 6, 6, 0}};
  MatMulReport R = runParallelMatMul(Cl, Rects, smallOptions());
  EXPECT_LT(R.MaxError, 1e-10);
  EXPECT_EQ(R.BlocksCommunicated, 0);
  EXPECT_GT(R.Makespan, 0.0);
}

TEST(ParallelMatMul, TwoRankRowSplitCorrect) {
  Cluster Cl = makeUniformCluster(2, 100.0);
  Cl.NoiseSigma = 0.0;
  std::vector<GridRect> Rects = {{0, 0, 6, 3, 0}, {0, 3, 6, 3, 1}};
  MatMulReport R = runParallelMatMul(Cl, Rects, smallOptions());
  EXPECT_LT(R.MaxError, 1e-10);
  EXPECT_GT(R.BlocksCommunicated, 0);
}

TEST(ParallelMatMul, FourRankGridCorrect) {
  Cluster Cl = makeUniformCluster(4, 100.0);
  Cl.NoiseSigma = 0.0;
  std::vector<GridRect> Rects = {{0, 0, 3, 3, 0},
                                 {3, 0, 3, 3, 1},
                                 {0, 3, 3, 3, 2},
                                 {3, 3, 3, 3, 3}};
  MatMulReport R = runParallelMatMul(Cl, Rects, smallOptions());
  EXPECT_LT(R.MaxError, 1e-10);
}

TEST(ParallelMatMul, HeterogeneousRectsFromLayoutCorrect) {
  Cluster Cl = makeUniformCluster(3, 100.0);
  Cl.Devices[1] = makeConstantProfile("slow", 25.0);
  Cl.Devices[2] = makeConstantProfile("mid", 50.0);
  Cl.NoiseSigma = 0.0;
  std::vector<double> Areas = {100.0, 25.0, 50.0};
  auto Rects = scaleToGrid(partitionColumnBased(Areas), 6);
  MatMulReport R = runParallelMatMul(Cl, Rects, smallOptions());
  EXPECT_LT(R.MaxError, 1e-10);
}

TEST(ParallelMatMul, BalancedBeatsEvenOnHeterogeneousCluster) {
  Cluster Cl = makeUniformCluster(2, 200.0);
  Cl.Devices[1] = makeConstantProfile("slow", 40.0); // 5x slower.
  Cl.NoiseSigma = 0.0;

  MatMulOptions O;
  O.NBlocks = 10;
  O.BlockSize = 4;
  O.Verify = false;

  std::vector<GridRect> Even = {{0, 0, 10, 5, 0}, {0, 5, 10, 5, 1}};
  // Speed-proportional areas: 200:40 -> rows 8.33 vs 1.67 -> 8/2.
  std::vector<GridRect> Balanced = {{0, 0, 10, 8, 0}, {0, 8, 10, 2, 1}};

  MatMulReport REven = runParallelMatMul(Cl, Even, O);
  MatMulReport RBal = runParallelMatMul(Cl, Balanced, O);
  EXPECT_LT(RBal.Makespan, 0.6 * REven.Makespan);
}

TEST(ParallelMatMul, CommunicationCountedPerBlockTransfer) {
  Cluster Cl = makeUniformCluster(2, 100.0);
  Cl.NoiseSigma = 0.0;
  MatMulOptions O;
  O.NBlocks = 4;
  O.BlockSize = 2;
  O.Verify = false;
  // Column split: each rank owns a 2x4 slab; every iteration k, the A
  // pivot column owner sends 4 blocks, the B pivot row owner sends 2.
  std::vector<GridRect> Rects = {{0, 0, 2, 4, 0}, {2, 0, 2, 4, 1}};
  MatMulReport R = runParallelMatMul(Cl, Rects, O);
  // A: for each of the 4 iterations, the 4 blocks of pivot column k go to
  // the non-owner (both rectangles span all rows): 4 * 4 transfers.
  // B: pivot-row block (k, col) is owned by the rank owning column col,
  // which is also the only rank that needs it: 0 transfers.
  EXPECT_EQ(R.BlocksCommunicated, 16);
}

TEST(ParallelMatMul, DeterministicAcrossRuns) {
  Cluster Cl = makeHclLikeCluster(false);
  MatMulOptions O;
  O.NBlocks = 6;
  O.BlockSize = 4;
  O.Verify = false;
  std::vector<double> Areas;
  for (const DeviceProfile &P : Cl.Devices)
    Areas.push_back(P.speed(100.0));
  auto Rects = scaleToGrid(partitionColumnBased(Areas), 6);
  MatMulReport A = runParallelMatMul(Cl, Rects, O);
  MatMulReport B = runParallelMatMul(Cl, Rects, O);
  EXPECT_DOUBLE_EQ(A.Makespan, B.Makespan);
  EXPECT_EQ(A.BlocksCommunicated, B.BlocksCommunicated);
}

TEST(ParallelMatMul, AllOptimisationModesBitIdentical) {
  // Zero-copy fan-out, overlap pipeline and threaded GEMM each claim to
  // leave the result matrix bit-identical to the serial schedule; the
  // folded per-rank hash makes that claim checkable without gathering.
  Cluster Cl = makeHclLikeCluster(true);
  MatMulOptions Base;
  Base.NBlocks = 6;
  Base.BlockSize = 8;
  Base.Verify = true;

  std::vector<double> Areas;
  for (const DeviceProfile &P : Cl.Devices)
    Areas.push_back(P.speed(100.0));
  auto Rects = scaleToGrid(partitionColumnBased(Areas), Base.NBlocks);

  MatMulOptions Baseline = Base;
  Baseline.ZeroCopy = false;
  Baseline.Overlap = false;
  Baseline.Threads = 1;
  MatMulReport Ref = runParallelMatMul(Cl, Rects, Baseline);
  EXPECT_LT(Ref.MaxError, 1e-10);
  EXPECT_NE(Ref.ResultHash, 0u);

  struct {
    bool ZeroCopy;
    bool Overlap;
    unsigned Threads;
  } Modes[] = {{true, false, 1}, {true, true, 1}, {true, true, 4}};
  for (const auto &M : Modes) {
    MatMulOptions O = Base;
    O.Verify = false;
    O.ZeroCopy = M.ZeroCopy;
    O.Overlap = M.Overlap;
    O.Threads = M.Threads;
    MatMulReport R = runParallelMatMul(Cl, Rects, O);
    EXPECT_EQ(R.ResultHash, Ref.ResultHash)
        << "zerocopy=" << M.ZeroCopy << " overlap=" << M.Overlap
        << " threads=" << M.Threads;
    EXPECT_EQ(R.BlocksCommunicated, Ref.BlocksCommunicated);
  }
}

TEST(ParallelMatMul, OverlapNeverSlowerAndCutsIdleTime) {
  Cluster Cl = makeHclLikeCluster(true);
  // Slow fabric so pivot transfers are worth hiding.
  Cl.Inter = LinkCost{2e-4, 4e-7};
  MatMulOptions O;
  O.NBlocks = 6;
  O.BlockSize = 16;
  O.Verify = false;

  std::vector<double> Areas;
  for (const DeviceProfile &P : Cl.Devices)
    Areas.push_back(P.speed(100.0));
  auto Rects = scaleToGrid(partitionColumnBased(Areas), O.NBlocks);

  MatMulReport Serial = runParallelMatMul(Cl, Rects, O);
  O.Overlap = true;
  MatMulReport Overlap = runParallelMatMul(Cl, Rects, O);

  EXPECT_EQ(Overlap.ResultHash, Serial.ResultHash);
  EXPECT_LE(Overlap.Makespan, Serial.Makespan * (1.0 + 1e-12));
  EXPECT_LT(Overlap.MaxIdleTime, Serial.MaxIdleTime);
}

TEST(ParallelMatMul, ZeroCopyEliminatesPhysicalCopies) {
  Cluster Cl = makeUniformCluster(4, 100.0);
  Cl.NoiseSigma = 0.0;
  MatMulOptions O;
  O.NBlocks = 6;
  O.BlockSize = 4;
  O.Verify = false;
  std::vector<GridRect> Rects = {{0, 0, 3, 3, 0},
                                 {3, 0, 3, 3, 1},
                                 {0, 3, 3, 3, 2},
                                 {3, 3, 3, 3, 3}};
  O.ZeroCopy = false;
  MatMulReport Copy = runParallelMatMul(Cl, Rects, O);
  O.ZeroCopy = true;
  MatMulReport Shared = runParallelMatMul(Cl, Rects, O);
  EXPECT_EQ(Shared.ResultHash, Copy.ResultHash);
  EXPECT_EQ(Shared.Comm.BytesCopied, 0u);
  EXPECT_GT(Copy.Comm.BytesCopied, 0u);
  // Same messages and logical traffic either way: the option changes the
  // copies, not the schedule.
  EXPECT_EQ(Shared.Comm.Messages, Copy.Comm.Messages);
  EXPECT_EQ(Shared.Comm.BytesLogical, Copy.Comm.BytesLogical);
}

TEST(AdaptiveMatMul, MakespanDropsAcrossRounds) {
  Cluster Cl = makeHclLikeCluster(false);
  Cl.NoiseSigma = 0.01;
  AdaptiveMatMulOptions O;
  O.NBlocks = 12;
  O.BlockSize = 4;
  O.Rounds = 5;
  AdaptiveMatMulReport R = runAdaptiveMatMul(Cl, O);
  ASSERT_EQ(R.RoundMakespans.size(), 5u);
  // The even first round is dominated by the slow devices; adaptation
  // recovers a visibly faster layout.
  EXPECT_LT(R.RoundMakespans.back(), 0.75 * R.RoundMakespans.front());
  EXPECT_LT(R.MaxError, 1e-9);
}

TEST(AdaptiveMatMul, AreasMigrateToFastDevices) {
  Cluster Cl = makeUniformCluster(2, 200.0);
  Cl.Devices[1] = makeConstantProfile("slow", 50.0); // 4x slower.
  Cl.NoiseSigma = 0.0;
  AdaptiveMatMulOptions O;
  O.NBlocks = 10;
  O.BlockSize = 4;
  O.Rounds = 4;
  AdaptiveMatMulReport R = runAdaptiveMatMul(Cl, O);
  // Round 1 is even; by the last round the fast device owns ~4x.
  EXPECT_EQ(R.RoundAreas.front()[0], 50);
  EXPECT_NEAR(static_cast<double>(R.RoundAreas.back()[0]), 80.0, 8.0);
}

TEST(AdaptiveMatMul, SingleRoundIsJustEvenMatMul) {
  Cluster Cl = makeUniformCluster(3, 100.0);
  Cl.NoiseSigma = 0.0;
  AdaptiveMatMulOptions O;
  O.NBlocks = 6;
  O.BlockSize = 4;
  O.Rounds = 1;
  AdaptiveMatMulReport R = runAdaptiveMatMul(Cl, O);
  ASSERT_EQ(R.RoundMakespans.size(), 1u);
  EXPECT_LT(R.MaxError, 1e-10);
}
