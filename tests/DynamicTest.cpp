//===-- tests/DynamicTest.cpp - dynamic partitioning tests ----------------===//

#include "core/Dynamic.h"

#include "core/Metrics.h"
#include "core/Partitioners.h"
#include "mpp/Runtime.h"
#include "sim/Cluster.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace fupermod;

namespace {

Point makePoint(double Units, double Time) {
  Point P;
  P.Units = Units;
  P.Time = Time;
  P.Reps = 1;
  return P;
}

} // namespace

TEST(DynamicContext, StartsEven) {
  DynamicContext Ctx(partitionGeometric, "piecewise", 100, 4);
  EXPECT_EQ(Ctx.size(), 4);
  EXPECT_EQ(Ctx.dist().sum(), 100);
  EXPECT_EQ(Ctx.dist().Parts[0].Units, 25);
}

TEST(DynamicContext, RepartitionsOnceAllModelsFitted) {
  DynamicContext Ctx(partitionGeometric, "piecewise", 100, 2);
  // First point: only one model fitted; the distribution must not move
  // and the change must read as "not converged".
  double Change = Ctx.updateAndRepartition(0, makePoint(50.0, 1.0));
  EXPECT_TRUE(std::isinf(Change));
  EXPECT_EQ(Ctx.dist().Parts[0].Units, 50);
  // Second model: rank 1 is 3x slower -> load shifts to rank 0.
  Change = Ctx.updateAndRepartition(1, makePoint(50.0, 3.0));
  EXPECT_GT(Change, 0.0);
  EXPECT_GT(Ctx.dist().Parts[0].Units, Ctx.dist().Parts[1].Units);
  EXPECT_EQ(Ctx.dist().sum(), 100);
}

TEST(DynamicContext, UpdateAllTakesOnePointPerRank) {
  DynamicContext Ctx(partitionConstant, "cpm", 90, 3);
  std::vector<Point> Points = {makePoint(30.0, 1.0), makePoint(30.0, 2.0),
                               makePoint(30.0, 3.0)};
  Ctx.updateAllAndRepartition(Points);
  // Speeds 30, 15, 10 -> shares 90 * {30,15,10}/55.
  EXPECT_EQ(Ctx.dist().sum(), 90);
  EXPECT_GT(Ctx.dist().Parts[0].Units, Ctx.dist().Parts[1].Units);
  EXPECT_GT(Ctx.dist().Parts[1].Units, Ctx.dist().Parts[2].Units);
}

TEST(DynamicPartitioning, ConvergesOnTwoDeviceCluster) {
  Cluster Cl = makeTwoDeviceCluster();
  Cl.NoiseSigma = 0.01;
  const std::int64_t D = 4000;

  std::vector<std::int64_t> FinalUnits(2, 0);
  int Iterations = 0;
  runSpmd(2,
          [&](Comm &C) {
            SimDevice Dev = Cl.makeDevice(C.rank());
            SimDeviceBackend Backend(Dev, &C);
            DynamicContext Ctx(partitionGeometric, "piecewise", D, 2);
            Precision Prec;
            Prec.MinReps = 3;
            Prec.MaxReps = 5;
            Prec.TargetRelativeError = 0.05;
            int It = runDynamicPartitioning(Ctx, C, Backend, Prec,
                                            /*Eps=*/0.01,
                                            /*MaxIterations=*/25);
            if (C.rank() == 0) {
              Iterations = It;
              FinalUnits[0] = Ctx.dist().Parts[0].Units;
              FinalUnits[1] = Ctx.dist().Parts[1].Units;
            }
          },
          Cl.makeCostModel());

  EXPECT_LT(Iterations, 25) << "dynamic partitioning did not converge";
  EXPECT_EQ(FinalUnits[0] + FinalUnits[1], D);

  // The converged distribution is close to the true optimum.
  Dist Final;
  Final.Total = D;
  Final.Parts.resize(2);
  Final.Parts[0].Units = FinalUnits[0];
  Final.Parts[1].Units = FinalUnits[1];
  auto Times = trueTimes(Final, Cl.Devices);
  double Opt = optimalMakespan(D, Cl.Devices);
  EXPECT_LT(makespan(Times), 1.15 * Opt);
}

TEST(DynamicPartitioning, PartialModelsStaySmall) {
  // The whole point of the dynamic algorithm: far fewer points than a
  // full model sweep.
  Cluster Cl = makeTwoDeviceCluster();
  Cl.NoiseSigma = 0.0;
  std::size_t PointsUsed = 0;
  runSpmd(2,
          [&](Comm &C) {
            SimDevice Dev = Cl.makeDevice(C.rank());
            SimDeviceBackend Backend(Dev, &C);
            DynamicContext Ctx(partitionGeometric, "piecewise", 3000, 2);
            Precision Prec;
            Prec.MinReps = 1;
            Prec.MaxReps = 1;
            runDynamicPartitioning(Ctx, C, Backend, Prec, 0.02, 20);
            if (C.rank() == 0)
              PointsUsed = Ctx.model(0).points().size();
          },
          Cl.makeCostModel());
  EXPECT_LE(PointsUsed, 12u);
  EXPECT_GE(PointsUsed, 1u);
}

TEST(BalanceIterate, UsesIterationTimes) {
  runSpmd(2, [](Comm &C) {
    DynamicContext Ctx(partitionConstant, "cpm", 100, 2);
    double Start = C.time();
    // Rank 0 computes 1 s, rank 1 computes 4 s on equal shares: rank 0
    // is 4x faster and must end up with ~4x the units.
    C.compute(C.rank() == 0 ? 1.0 : 4.0);
    balanceIterate(Ctx, C, Start);
    EXPECT_EQ(Ctx.dist().sum(), 100);
    EXPECT_EQ(Ctx.dist().Parts[0].Units, 80);
    EXPECT_EQ(Ctx.dist().Parts[1].Units, 20);
  });
}

TEST(BalanceIterate, RepeatedCallsConverge) {
  // Constant-speed devices: one balance step is already optimal, further
  // steps must not oscillate.
  Cluster Cl = makeUniformCluster(2, 10.0);
  Cl.Devices[1] = makeConstantProfile("slow", 5.0);
  Cl.NoiseSigma = 0.0;
  runSpmd(2,
          [&](Comm &C) {
            SimDevice Dev = Cl.makeDevice(C.rank());
            DynamicContext Ctx(partitionGeometric, "piecewise", 300, 2);
            for (int It = 0; It < 5; ++It) {
              double Start = C.time();
              double Units = static_cast<double>(
                  std::max<std::int64_t>(Ctx.dist().Parts[C.rank()].Units,
                                         1));
              C.compute(Dev.measureTime(Units));
              balanceIterate(Ctx, C, Start);
            }
            // Speeds 10 vs 5 -> 200/100 split.
            EXPECT_NEAR(static_cast<double>(Ctx.dist().Parts[0].Units),
                        200.0, 8.0);
          },
          Cl.makeCostModel());
}
