//===-- tests/CollectivesTest.cpp - collective conformance ----------------===//
//
// The binomial-tree collectives must be drop-in replacements for the
// obvious linear algorithms: byte-exact results at every group size and
// root, the same floating-point reduction order for allreduce, clean
// CommError propagation on a poisoned world, and the advertised zero-copy
// and overlap behaviour of the shared-payload / nonblocking paths.
//
//===----------------------------------------------------------------------===//

#include "mpp/Runtime.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <vector>

using namespace fupermod;

namespace {

const int GroupSizes[] = {1, 2, 3, 5, 8};

/// Deterministic per-rank payload bytes (SplitMix64-style mixing).
std::vector<std::byte> rankData(int Rank, std::size_t Len) {
  std::vector<std::byte> Data(Len);
  std::uint64_t X = 0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(
                                                 Rank) +
                                             1);
  for (std::size_t I = 0; I < Len; ++I) {
    X ^= X >> 27;
    X *= 0x94d049bb133111ebull;
    Data[I] = static_cast<std::byte>(X >> 56);
  }
  return Data;
}

/// Per-rank contribution length: varied, with rank patterns hitting zero.
std::size_t rankLen(int Rank) {
  return static_cast<std::size_t>((Rank * 37 + 11) % 53) *
         static_cast<std::size_t>(Rank % 3 == 2 ? 0 : 1);
}

// --- Reference linear algorithms, built only on blocking send/recv. ---

constexpr int TagLinear = 901;

std::vector<std::byte> linearBcast(Comm &C, std::vector<std::byte> Data,
                                   int Root) {
  if (C.rank() == Root) {
    for (int R = 0; R < C.size(); ++R)
      if (R != Root)
        C.sendBytes(R, TagLinear, Data);
    return Data;
  }
  return C.recvBytes(Root, TagLinear);
}

std::vector<std::byte> linearGatherv(Comm &C,
                                     std::span<const std::byte> Local,
                                     int Root) {
  if (C.rank() != Root) {
    C.sendBytes(Root, TagLinear, Local);
    return {};
  }
  std::vector<std::byte> All;
  for (int R = 0; R < C.size(); ++R) {
    if (R == Root) {
      All.insert(All.end(), Local.begin(), Local.end());
      continue;
    }
    std::vector<std::byte> Chunk = C.recvBytes(R, TagLinear);
    All.insert(All.end(), Chunk.begin(), Chunk.end());
  }
  return All;
}

std::vector<std::byte> linearScatterv(Comm &C,
                                      std::span<const std::byte> All,
                                      std::span<const std::size_t> Counts,
                                      int Root) {
  if (C.rank() == Root) {
    std::size_t Off = 0;
    std::vector<std::byte> Mine;
    for (int R = 0; R < C.size(); ++R) {
      std::span<const std::byte> Chunk = All.subspan(Off, Counts[R]);
      if (R == Root)
        Mine.assign(Chunk.begin(), Chunk.end());
      else
        C.sendBytes(R, TagLinear, Chunk);
      Off += Counts[R];
    }
    return Mine;
  }
  return C.recvBytes(Root, TagLinear);
}

/// Linear allreduce with the documented reduction order (ascending rank
/// at the root): the binomial implementation must be bit-identical.
std::vector<double> linearAllreduce(Comm &C, std::span<const double> Local,
                                    ReduceOp Op) {
  std::vector<std::byte> Raw =
      linearGatherv(C, std::as_bytes(Local), /*Root=*/0);
  std::vector<double> Result(Local.begin(), Local.end());
  if (C.rank() == 0) {
    for (std::size_t I = 0; I < Local.size(); ++I)
      Result[I] = reinterpret_cast<const double *>(Raw.data())[I];
    for (int R = 1; R < C.size(); ++R)
      for (std::size_t I = 0; I < Local.size(); ++I) {
        double V = reinterpret_cast<const double *>(
            Raw.data())[static_cast<std::size_t>(R) * Local.size() + I];
        if (Op == ReduceOp::Sum)
          Result[I] += V;
        else if (Op == ReduceOp::Max)
          Result[I] = std::max(Result[I], V);
        else
          Result[I] = std::min(Result[I], V);
      }
  }
  std::vector<std::byte> Bytes(Result.size() * sizeof(double));
  std::memcpy(Bytes.data(), Result.data(), Bytes.size());
  Bytes = linearBcast(C, std::move(Bytes), /*Root=*/0);
  std::memcpy(Result.data(), Bytes.data(), Bytes.size());
  return Result;
}

} // namespace

TEST(CollectivesConformance, BcastByteExactAllRootsAllSizes) {
  for (int P : GroupSizes) {
    for (int Root = 0; Root < P; ++Root) {
      for (std::size_t Len : {std::size_t(0), std::size_t(1),
                              std::size_t(257), std::size_t(4096)}) {
        std::vector<std::vector<std::byte>> Tree(P), Linear(P);
        runSpmd(P, [&](Comm &C) {
          std::vector<std::byte> Data;
          if (C.rank() == Root)
            Data = rankData(Root, Len);
          C.bcastBytes(Data, Root);
          Tree[C.rank()] = Data;
          std::vector<std::byte> Ref;
          if (C.rank() == Root)
            Ref = rankData(Root, Len);
          Linear[C.rank()] = linearBcast(C, std::move(Ref), Root);
        });
        for (int R = 0; R < P; ++R) {
          EXPECT_EQ(Tree[R], Linear[R]) << "P=" << P << " root=" << Root;
          EXPECT_EQ(Tree[R], rankData(Root, Len));
        }
      }
    }
  }
}

TEST(CollectivesConformance, GathervByteExactAllRootsAllSizes) {
  for (int P : GroupSizes) {
    for (int Root = 0; Root < P; ++Root) {
      std::vector<std::byte> Tree, Linear;
      runSpmd(P, [&](Comm &C) {
        std::vector<std::byte> Local = rankData(C.rank(), rankLen(C.rank()));
        std::vector<std::byte> T = C.gathervBytes(Local, Root);
        std::vector<std::byte> L = linearGatherv(C, Local, Root);
        if (C.rank() == Root) {
          Tree = std::move(T);
          Linear = std::move(L);
        } else {
          EXPECT_TRUE(T.empty());
        }
      });
      EXPECT_EQ(Tree, Linear) << "P=" << P << " root=" << Root;
      std::vector<std::byte> Expected;
      for (int R = 0; R < P; ++R) {
        std::vector<std::byte> Chunk = rankData(R, rankLen(R));
        Expected.insert(Expected.end(), Chunk.begin(), Chunk.end());
      }
      EXPECT_EQ(Tree, Expected) << "P=" << P << " root=" << Root;
    }
  }
}

TEST(CollectivesConformance, ScattervByteExactAllRootsAllSizes) {
  for (int P : GroupSizes) {
    std::vector<std::size_t> Counts;
    std::vector<std::byte> All;
    for (int R = 0; R < P; ++R) {
      Counts.push_back(rankLen(R));
      std::vector<std::byte> Chunk = rankData(R, rankLen(R));
      All.insert(All.end(), Chunk.begin(), Chunk.end());
    }
    for (int Root = 0; Root < P; ++Root) {
      runSpmd(P, [&](Comm &C) {
        std::vector<std::byte> Tree = C.scattervBytes(
            C.rank() == Root ? std::span<const std::byte>(All)
                             : std::span<const std::byte>(),
            Counts, Root);
        std::vector<std::byte> Linear = linearScatterv(
            C,
            C.rank() == Root ? std::span<const std::byte>(All)
                             : std::span<const std::byte>(),
            Counts, Root);
        EXPECT_EQ(Tree, Linear) << "P=" << P << " root=" << Root;
        EXPECT_EQ(Tree, rankData(C.rank(), rankLen(C.rank())));
      });
    }
  }
}

TEST(CollectivesConformance, AllreduceBitIdenticalToLinearOrder) {
  // Values chosen so that floating-point summation order matters: only
  // the documented ascending-rank order is bit-identical.
  for (int P : GroupSizes) {
    for (ReduceOp Op : {ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min}) {
      runSpmd(P, [&](Comm &C) {
        std::vector<double> Local = {1e16 * (C.rank() % 2 ? 1.0 : -1.0),
                                     1.0 + C.rank(),
                                     1.0 / (3.0 + C.rank())};
        std::vector<double> Tree = C.allreduce(Local, Op);
        std::vector<double> Linear = linearAllreduce(C, Local, Op);
        ASSERT_EQ(Tree.size(), Linear.size());
        EXPECT_EQ(0, std::memcmp(Tree.data(), Linear.data(),
                                 Tree.size() * sizeof(double)))
            << "P=" << P;
      });
    }
  }
}

// --- Poisoned-group behaviour: no deadlock, CommError on every survivor,
// for every collective entry point. ---

TEST(CollectivesPoison, EverySurvivorGetsCommErrorFromEachCollective) {
  for (int P : {2, 3, 5, 8}) {
    for (int Kind = 0; Kind < 4; ++Kind) {
      std::atomic<int> Survivors{0};
      SpmdResult R = runSpmd(P, [&](Comm &C) {
        if (C.rank() == P - 1)
          throw std::runtime_error("scripted death");
        try {
          for (;;) {
            std::vector<std::byte> B(8, std::byte{1});
            std::vector<double> V = {1.0};
            std::vector<std::size_t> Counts(
                static_cast<std::size_t>(C.size()), 8u);
            std::vector<std::byte> All(8u * C.size(), std::byte{2});
            switch (Kind) {
            case 0:
              C.bcastBytes(B, 0);
              break;
            case 1:
              C.gathervBytes(B, 0);
              break;
            case 2:
              C.scattervBytes(All, Counts, 0);
              break;
            default:
              C.allreduce(V, ReduceOp::Sum);
            }
          }
        } catch (const CommError &E) {
          EXPECT_EQ(E.failedRank(), P - 1);
          ++Survivors;
          throw; // Recorded by runSpmd as a propagated failure.
        }
      });
      EXPECT_EQ(Survivors.load(), P - 1) << "P=" << P << " kind=" << Kind;
      EXPECT_FALSE(R.allOk());
      EXPECT_EQ(R.Ranks[static_cast<std::size_t>(P - 1)].Error,
                "scripted death");
    }
  }
}

// --- Zero-copy guarantees of the shared-payload paths. ---

TEST(CollectivesZeroCopy, BcastPayloadForwardsOneBuffer) {
  const int P = 8;
  const std::size_t Bytes = 1 << 16;
  std::vector<const std::byte *> Seen(P, nullptr);
  SpmdResult R = runSpmd(P, [&](Comm &C) {
    Payload Data;
    if (C.rank() == 0)
      Data = Payload::adoptBytes(rankData(0, Bytes));
    C.bcastPayload(Data, 0);
    ASSERT_EQ(Data.size(), Bytes);
    Seen[C.rank()] = Data.bytes().data();
  });
  // Every rank views the root's buffer: no physical copies anywhere.
  for (int I = 1; I < P; ++I)
    EXPECT_EQ(Seen[I], Seen[0]);
  EXPECT_EQ(R.Comm.BytesCopied, 0u);
  EXPECT_EQ(R.Comm.Messages, static_cast<std::uint64_t>(P - 1));
  EXPECT_EQ(R.Comm.BytesLogical, static_cast<std::uint64_t>(P - 1) * Bytes);
}

TEST(CollectivesZeroCopy, SharedFanOutCopiesNothing) {
  // One payload sent to N receivers: N messages, N * size logical bytes,
  // zero physical copies; every receiver shares the sender's storage.
  const int P = 5;
  const std::size_t Bytes = 4096;
  SpmdResult R = runSpmd(P, [&](Comm &C) {
    if (C.rank() == 0) {
      Payload Block = Payload::adoptBytes(rankData(0, Bytes));
      for (int Dst = 1; Dst < P; ++Dst)
        C.sendPayload(Dst, 7, Block);
      // Keep the sender's reference alive while receivers inspect
      // theirs, so sharedBuffer() is deterministically true.
      C.barrier();
    } else {
      Payload Got = C.recvPayload(0, 7);
      EXPECT_EQ(Got.size(), Bytes);
      EXPECT_TRUE(Got.sharedBuffer());
      C.barrier();
    }
  });
  EXPECT_EQ(R.Comm.BytesCopied, 0u);
  EXPECT_EQ(R.Comm.Messages, static_cast<std::uint64_t>(P - 1));
  EXPECT_EQ(R.Comm.BytesLogical, static_cast<std::uint64_t>(P - 1) * Bytes);
}

// --- Nonblocking receive semantics: computation between irecv and wait
// overlaps the transfer on the virtual clock. ---

TEST(CollectivesOverlap, ComputeBetweenIrecvAndWaitHidesTransfer) {
  // 1 MB at 1 MB/s: the transfer takes ~1 s of virtual time.
  auto Cost = std::make_shared<UniformCostModel>(1e-3, 1e6);
  const std::size_t Bytes = 1 << 20;
  const double Arrival = 1e-3 + static_cast<double>(Bytes) / 1e6;
  runSpmd(
      2,
      [&](Comm &C) {
        if (C.rank() == 0) {
          C.sendBytes(1, 3, rankData(0, Bytes));
          C.sendBytes(1, 4, rankData(0, Bytes));
          return;
        }
        // Blocking receive: the rank stalls until the arrival time.
        C.recvBytes(0, 3);
        EXPECT_NEAR(C.time(), Arrival, 1e-12);

        // Nonblocking receive with enough compute to cover the second
        // transfer: the wait returns at the compute's end, not later.
        double ComputeSeconds = 2.0 * Arrival;
        RecvRequest Req = C.irecv(0, 4);
        EXPECT_TRUE(Req.pending());
        C.compute(ComputeSeconds);
        Payload Data = Req.wait();
        EXPECT_FALSE(Req.pending());
        EXPECT_EQ(Data.size(), Bytes);
        EXPECT_NEAR(C.time(), Arrival + ComputeSeconds, 1e-12);
      },
      Cost);
}

TEST(CollectivesOverlap, IrecvReadyAfterQueuedSelfSend) {
  runSpmd(1, [](Comm &C) {
    C.isend(0, 11, std::vector<int>{1, 2, 3});
    RecvRequest Req = C.irecv(0, 11);
    EXPECT_TRUE(Req.ready());
    std::vector<int> V = Req.wait().toVector<int>();
    EXPECT_EQ(V, (std::vector<int>{1, 2, 3}));
  });
}
