//===-- tests/SimTest.cpp - simulated platform tests ----------------------===//

#include "sim/Cluster.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace fupermod;

TEST(ConstantProfile, SpeedIndependentOfSize) {
  DeviceProfile P = makeConstantProfile("c", 100.0);
  EXPECT_DOUBLE_EQ(P.speed(1.0), 100.0);
  EXPECT_DOUBLE_EQ(P.speed(1e6), 100.0);
  EXPECT_DOUBLE_EQ(P.time(200.0), 2.0);
}

TEST(CpuProfile, RampsUpToPeak) {
  DeviceProfile P = makeCpuProfile("cpu", 1000.0, 50.0, 1e7, 100.0, 0.5);
  // Tiny problems run below peak; large (pre-cliff) problems approach it.
  EXPECT_LT(P.speed(10.0), 0.2 * 1000.0);
  EXPECT_GT(P.speed(5000.0), 0.95 * 1000.0);
}

TEST(CpuProfile, CliffDropsSpeed) {
  DeviceProfile P = makeCpuProfile("cpu", 1000.0, 1.0, 1000.0, 50.0, 0.6);
  double Before = P.speed(500.0);
  double After = P.speed(2000.0);
  EXPECT_GT(Before, After);
  // The drop factor keeps roughly 40% of peak past the cliff.
  EXPECT_NEAR(After / Before, 0.4, 0.05);
}

TEST(CpuProfile, TimeIsMonotoneInSize) {
  DeviceProfile P = makeCpuProfile("cpu", 800.0, 25.0, 2000.0, 300.0, 0.55);
  double Prev = 0.0;
  for (double D = 10.0; D < 10000.0; D *= 1.3) {
    double T = P.time(D);
    EXPECT_GT(T, Prev) << "at size " << D;
    Prev = T;
  }
}

TEST(GpuProfile, SpeedGrowsWithSize) {
  DeviceProfile P = makeGpuProfile("gpu", 4000.0, 0.05, 1e9, 1.0);
  EXPECT_LT(P.speed(10.0), P.speed(1000.0));
  EXPECT_LT(P.speed(1000.0), P.speed(100000.0));
  // Asymptotically approaches the peak.
  EXPECT_NEAR(P.speed(1e8), 4000.0, 40.0);
}

TEST(GpuProfile, StagingDominatesSmallSizes) {
  DeviceProfile P = makeGpuProfile("gpu", 4000.0, 0.05, 1e9, 1.0);
  // At 1 unit the time is essentially the staging overhead.
  EXPECT_NEAR(P.time(1.0), 0.05, 0.001);
}

TEST(GpuProfile, MemoryLimitSlowsOutOfCore) {
  DeviceProfile P = makeGpuProfile("gpu", 1000.0, 0.0, 500.0, 0.25);
  EXPECT_DOUBLE_EQ(P.speed(400.0), 1000.0);
  EXPECT_DOUBLE_EQ(P.speed(600.0), 250.0);
  EXPECT_TRUE(P.canExecute(600.0));
}

TEST(GpuProfile, NoOutOfCoreMeansCannotExecute) {
  DeviceProfile P = makeGpuProfile("gpu", 1000.0, 0.0, 500.0, 0.0);
  EXPECT_TRUE(P.canExecute(500.0));
  EXPECT_FALSE(P.canExecute(501.0));
}

TEST(NetlibProfile, PlateauNearFiveGflops) {
  DeviceProfile P = makeNetlibBlasProfile(/*UnitFlops=*/1e6);
  // In units of 1e6 flops, 5 GFLOPS is 5000 units/s; the plateau should
  // be within ripple distance of that.
  double S = P.speed(1500.0);
  EXPECT_GT(S, 4200.0);
  EXPECT_LT(S, 5500.0);
}

TEST(NetlibProfile, FallsOffPastCliff) {
  DeviceProfile P = makeNetlibBlasProfile(1e6);
  EXPECT_LT(P.speed(5000.0), 0.75 * P.speed(1500.0));
}

TEST(Contention, ScalesSpeedDown) {
  DeviceProfile Base = makeConstantProfile("c", 100.0);
  DeviceProfile Shared = withContention(Base, /*ActivePeers=*/3, 0.5);
  EXPECT_DOUBLE_EQ(Shared.speed(10.0), 100.0 / 2.5);
  DeviceProfile Alone = withContention(Base, 0, 0.5);
  EXPECT_DOUBLE_EQ(Alone.speed(10.0), 100.0);
}

TEST(SimDevice, NoNoiseIsExact) {
  SimDevice Dev(makeConstantProfile("c", 10.0), 0.0, 1);
  for (int I = 0; I < 5; ++I)
    EXPECT_DOUBLE_EQ(Dev.measureTime(100.0), 10.0);
}

TEST(SimDevice, NoiseIsDeterministicPerSeed) {
  SimDevice A(makeConstantProfile("c", 10.0), 0.05, 99);
  SimDevice B(makeConstantProfile("c", 10.0), 0.05, 99);
  for (int I = 0; I < 20; ++I)
    EXPECT_DOUBLE_EQ(A.measureTime(50.0), B.measureTime(50.0));
}

TEST(SimDevice, NoiseScattersAroundTruth) {
  SimDevice Dev(makeConstantProfile("c", 10.0), 0.05, 7);
  double Sum = 0.0;
  const int N = 2000;
  bool SawDifferent = false;
  double First = Dev.measureTime(100.0);
  Sum += First;
  for (int I = 1; I < N; ++I) {
    double T = Dev.measureTime(100.0);
    Sum += T;
    SawDifferent = SawDifferent || T != First;
    EXPECT_GT(T, 0.0);
  }
  EXPECT_TRUE(SawDifferent);
  EXPECT_NEAR(Sum / N, 10.0, 0.1);
}

TEST(SimDevice, NoiseClampedToSaneRange) {
  SimDevice Dev(makeConstantProfile("c", 1.0), 0.1, 3);
  for (int I = 0; I < 5000; ++I) {
    double T = Dev.measureTime(10.0);
    EXPECT_GE(T, 10.0 * (1.0 - 0.4));
    EXPECT_LE(T, 10.0 * (1.0 + 0.4));
  }
}

TEST(Cluster, TwoDevicePresetShape) {
  Cluster C = makeTwoDeviceCluster();
  EXPECT_EQ(C.size(), 2);
  // Device 0 is distinctly faster at moderate sizes.
  EXPECT_GT(C.Devices[0].speed(500.0), 1.5 * C.Devices[1].speed(500.0));
}

TEST(Cluster, HclPresetIsHeterogeneous) {
  Cluster C = makeHclLikeCluster(true);
  EXPECT_EQ(C.size(), 7);
  EXPECT_EQ(C.NodeOfRank.size(), 7u);
  // Three distinct node ids.
  EXPECT_EQ(C.NodeOfRank.front(), 0);
  EXPECT_EQ(C.NodeOfRank.back(), 2);
  // Speeds differ across devices at a common size.
  double S0 = C.Devices[0].speed(1000.0);
  double S4 = C.Devices[4].speed(1000.0);
  EXPECT_GT(S0, 1.5 * S4);
}

TEST(Cluster, HclPresetWithoutGpu) {
  Cluster C = makeHclLikeCluster(false);
  EXPECT_EQ(C.size(), 6);
}

TEST(Cluster, UniformPresetIsHomogeneous) {
  Cluster C = makeUniformCluster(5, 42.0);
  EXPECT_EQ(C.size(), 5);
  for (const DeviceProfile &P : C.Devices)
    EXPECT_DOUBLE_EQ(P.speed(123.0), 42.0);
}

TEST(Cluster, MakeDevicesSeedsDiffer) {
  Cluster C = makeUniformCluster(2, 10.0);
  C.NoiseSigma = 0.05;
  auto Devs = C.makeDevices();
  ASSERT_EQ(Devs.size(), 2u);
  // Different seeds give different noise sequences.
  EXPECT_NE(Devs[0].measureTime(100.0), Devs[1].measureTime(100.0));
}

TEST(Cluster, CostModelDistinguishesNodes) {
  Cluster C = makeHclLikeCluster(true);
  auto Cost = C.makeCostModel();
  LinkCost Intra = Cost->link(0, 1);
  LinkCost Inter = Cost->link(0, 4);
  EXPECT_LT(Intra.BytePeriod, Inter.BytePeriod);
  EXPECT_LT(Intra.Latency, Inter.Latency);
}
