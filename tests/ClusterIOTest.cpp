//===-- tests/ClusterIOTest.cpp - cluster description parsing -------------===//

#include "sim/ClusterIO.h"

#include "equalize/Policy.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace fupermod;

namespace {

const char *SampleText = R"(# sample platform
noise 0.05
seed 99
intra 2e-6 4e9
inter 1e-4 5e8
device 0 constant fast 800
device 0 cpu core 700 20 1500 200 0.5
device 0 contended sib 700 20 1500 200 0.5 3 0.25
device 1 gpu accel 4000 0.05 12000 0.5
)";

} // namespace

TEST(ClusterIO, ParsesSampleDescription) {
  std::istringstream IS(SampleText);
  std::string Error;
  auto Cl = parseCluster(IS, &Error);
  ASSERT_TRUE(Cl.has_value()) << Error;
  EXPECT_EQ(Cl->size(), 4);
  EXPECT_DOUBLE_EQ(Cl->NoiseSigma, 0.05);
  EXPECT_EQ(Cl->Seed, 99u);
  EXPECT_EQ(Cl->NodeOfRank, (std::vector<int>{0, 0, 0, 1}));
  EXPECT_DOUBLE_EQ(Cl->Intra.Latency, 2e-6);
  EXPECT_DOUBLE_EQ(1.0 / Cl->Inter.BytePeriod, 5e8);

  // Device semantics survive parsing.
  EXPECT_DOUBLE_EQ(Cl->Devices[0].speed(123.0), 800.0);
  // Contended sibling is slower than the plain core at the same size.
  EXPECT_LT(Cl->Devices[2].speed(500.0), Cl->Devices[1].speed(500.0));
  // GPU memory limit and out-of-core factor present.
  EXPECT_DOUBLE_EQ(Cl->Devices[3].memoryLimitUnits(), 12000.0);
  EXPECT_TRUE(Cl->Devices[3].canExecute(20000.0));
}

TEST(ClusterIO, CommentsAndBlankLinesIgnored) {
  std::istringstream IS("\n# hi\ndevice 0 constant a 10 # trailing\n\n");
  auto Cl = parseCluster(IS);
  ASSERT_TRUE(Cl.has_value());
  EXPECT_EQ(Cl->size(), 1);
}

TEST(ClusterIO, RejectsMalformedInput) {
  const char *Bad[] = {
      "frobnicate 3\n",                       // Unknown key.
      "device 0 constant a -5\n",             // Negative speed.
      "device 0 warp a 1 2 3\n",              // Unknown device form.
      "device 0 cpu a 700 20 1500 200\n",     // Missing drop factor.
      "noise -1\n device 0 constant a 1\n",   // Negative noise.
      "intra 1e-6 0\n device 0 constant a 1\n", // Zero bandwidth.
      "",                                     // No devices at all.
  };
  for (const char *Text : Bad) {
    std::istringstream IS(Text);
    std::string Error;
    EXPECT_FALSE(parseCluster(IS, &Error).has_value()) << Text;
    EXPECT_FALSE(Error.empty()) << Text;
  }
}

TEST(ClusterIO, ParsesAllFaultForms) {
  std::istringstream IS(R"(
device 0 constant a 10
device 0 constant b 10
fault 0 spike 5 8.0 3
fault 0 slowdown 30 4.0
fault 1 hang 2 7.5
fault 1 fail 9
)");
  std::string Error;
  auto Cl = parseCluster(IS, &Error);
  ASSERT_TRUE(Cl.has_value()) << Error;
  ASSERT_EQ(Cl->Faults.size(), 2u);
  ASSERT_EQ(Cl->Faults[0].Events.size(), 2u);
  ASSERT_EQ(Cl->Faults[1].Events.size(), 2u);

  const FaultEvent &Spike = Cl->Faults[0].Events[0];
  EXPECT_EQ(Spike.Kind, FaultKind::LatencySpike);
  EXPECT_EQ(Spike.AfterCalls, 5);
  EXPECT_DOUBLE_EQ(Spike.Factor, 8.0);
  EXPECT_EQ(Spike.Period, 3);

  const FaultEvent &Slow = Cl->Faults[0].Events[1];
  EXPECT_EQ(Slow.Kind, FaultKind::Slowdown);
  EXPECT_DOUBLE_EQ(Slow.AfterBusyTime, 30.0);
  EXPECT_DOUBLE_EQ(Slow.Factor, 4.0);

  const FaultEvent &Hang = Cl->Faults[1].Events[0];
  EXPECT_EQ(Hang.Kind, FaultKind::Hang);
  EXPECT_EQ(Hang.AfterCalls, 2);
  EXPECT_DOUBLE_EQ(Hang.HangSeconds, 7.5);

  const FaultEvent &Fail = Cl->Faults[1].Events[1];
  EXPECT_EQ(Fail.Kind, FaultKind::Fail);
  EXPECT_EQ(Fail.AfterCalls, 9);
}

TEST(ClusterIO, ParsedFaultPlanReachesTheDevice) {
  std::istringstream IS("device 0 constant a 10\nfault 0 fail 0\n");
  auto Cl = parseCluster(IS);
  ASSERT_TRUE(Cl.has_value());
  SimDevice Dev = Cl->makeDevice(0);
  EXPECT_EQ(Dev.measure(10.0).Status, MeasureStatus::Failed);
  EXPECT_TRUE(Dev.hardFailed());
}

TEST(ClusterIO, SpikePeriodIsOptional) {
  std::istringstream IS("device 0 constant a 10\nfault 0 spike 2 8.0\n");
  auto Cl = parseCluster(IS);
  ASSERT_TRUE(Cl.has_value());
  ASSERT_EQ(Cl->Faults.size(), 1u);
  EXPECT_EQ(Cl->Faults[0].Events[0].Period, 0); // One-shot spike.
}

TEST(ClusterIO, RejectsMalformedFaults) {
  const char *Bad[] = {
      "device 0 constant a 10\nfault 1 fail 0\n",     // No such rank.
      "device 0 constant a 10\nfault 0 warp 1 2\n",   // Unknown kind.
      "device 0 constant a 10\nfault 0 spike 3\n",    // Missing factor.
      "device 0 constant a 10\nfault 0 spike 0 2 -1\n", // Bad period.
      "device 0 constant a 10\nfault 0 slowdown 5 0\n", // Zero factor.
      "device 0 constant a 10\nfault 0 hang 0 -5\n",  // Negative hang.
      "device 0 constant a 10\nfault -1 fail 0\n",    // Negative rank.
  };
  for (const char *Text : Bad) {
    std::istringstream IS(Text);
    std::string Error;
    EXPECT_FALSE(parseCluster(IS, &Error).has_value()) << Text;
    EXPECT_FALSE(Error.empty()) << Text;
  }
}

TEST(ClusterIO, ResolvePresets) {
  EXPECT_EQ(resolveCluster("two-device")->size(), 2);
  EXPECT_EQ(resolveCluster("hcl")->size(), 7);
  EXPECT_EQ(resolveCluster("hcl-nogpu")->size(), 6);
  EXPECT_EQ(resolveCluster("uniform5")->size(), 5);
}

TEST(ClusterIO, ResolveMissingFileFails) {
  std::string Error;
  EXPECT_FALSE(resolveCluster("/no/such/file.cluster", &Error).has_value());
  EXPECT_FALSE(Error.empty());
}

TEST(ClusterIO, ShippedSampleFileParses) {
  // The sample description shipped in examples/ must stay valid.
  std::string Error;
  auto Cl = loadCluster(std::string(FUPERMOD_SOURCE_DIR) +
                            "/examples/sample.cluster",
                        &Error);
  ASSERT_TRUE(Cl.has_value()) << Error;
  EXPECT_EQ(Cl->size(), 5);
  EXPECT_EQ(Cl->NodeOfRank.back(), 1);
  // The documented fault-plan example stays in sync with the parser.
  ASSERT_EQ(Cl->Faults.size(), 5u);
  ASSERT_EQ(Cl->Faults[4].Events.size(), 1u);
  EXPECT_EQ(Cl->Faults[4].Events[0].Kind, FaultKind::Slowdown);
  EXPECT_DOUBLE_EQ(Cl->Faults[4].Events[0].AfterBusyTime, 3600.0);
}

TEST(ClusterIO, NodeLinesOverrideIntraLinks) {
  std::istringstream IS(R"(
intra 2e-6 4e9
inter 1e-4 5e8
device 0 constant a 10
device 0 constant b 10
device 1 constant c 10
device 1 constant d 10
node 1 5e-7 2e10
)");
  std::string Error;
  auto Cl = parseCluster(IS, &Error);
  ASSERT_TRUE(Cl.has_value()) << Error;
  ASSERT_EQ(Cl->NodeIntra.size(), 1u);
  EXPECT_DOUBLE_EQ(Cl->NodeIntra.at(1).Latency, 5e-7);

  auto Model = Cl->makeCostModel();
  ASSERT_NE(Model, nullptr);
  // Node 0 keeps the platform-wide intra parameters ...
  EXPECT_DOUBLE_EQ(Model->link(0, 1).Latency, 2e-6);
  // ... node 1 uses its override ...
  EXPECT_DOUBLE_EQ(Model->link(2, 3).Latency, 5e-7);
  EXPECT_DOUBLE_EQ(1.0 / Model->link(2, 3).BytePeriod, 2e10);
  // ... and cross-node traffic stays on the network link.
  EXPECT_DOUBLE_EQ(Model->link(1, 2).Latency, 1e-4);

  // The placement also surfaces as a topology for the runtime.
  const NodeTopology *Topo = Model->topology();
  ASSERT_NE(Topo, nullptr);
  EXPECT_EQ(Topo->numNodes(), 2);
  EXPECT_EQ(Topo->nodeOf(3), 1);
}

TEST(ClusterIO, RejectsMalformedNodeLines) {
  const char *Bad[] = {
      "device 0 constant a 1\nnode 0 1e-6\n",        // Missing bandwidth.
      "device 0 constant a 1\nnode -1 1e-6 1e9\n",   // Negative node id.
      "device 0 constant a 1\nnode 0 -1e-6 1e9\n",   // Negative latency.
      "device 0 constant a 1\nnode 0 1e-6 0\n",      // Zero bandwidth.
      "device 0 constant a 1\nnode 0 1e-6 1e9\nnode 0 2e-6 1e9\n", // Dup.
      "device 0 constant a 1\nnode 3 1e-6 1e9\n",    // No such node.
  };
  for (const char *Text : Bad) {
    std::istringstream IS(Text);
    std::string Error;
    EXPECT_FALSE(parseCluster(IS, &Error).has_value()) << Text;
    EXPECT_FALSE(Error.empty()) << Text;
  }
}

TEST(ClusterIO, ParsesEqualizeLine) {
  std::istringstream IS(R"(
device 0 constant a 10
device 0 constant b 10
equalize arbitrated threshold 0.3 clear 0.15 cooldown 5 breaches 2 alpha 0.6 period 4 horizon 12
)");
  std::string Error;
  auto Cl = parseCluster(IS, &Error);
  ASSERT_TRUE(Cl.has_value()) << Error;
  EXPECT_EQ(Cl->Equalize.Policy, "arbitrated");
  EXPECT_DOUBLE_EQ(Cl->Equalize.TriggerThreshold, 0.3);
  EXPECT_DOUBLE_EQ(Cl->Equalize.ClearThreshold, 0.15);
  EXPECT_EQ(Cl->Equalize.Cooldown, 5);
  EXPECT_EQ(Cl->Equalize.MinBreaches, 2);
  EXPECT_DOUBLE_EQ(Cl->Equalize.EwmaAlpha, 0.6);
  EXPECT_EQ(Cl->Equalize.Period, 4);
  EXPECT_EQ(Cl->Equalize.HorizonRounds, 12);
}

TEST(ClusterIO, EqualizeLineAbsentLeavesPolicyEmpty) {
  std::istringstream IS("device 0 constant a 10\n");
  auto Cl = parseCluster(IS);
  ASSERT_TRUE(Cl.has_value());
  EXPECT_TRUE(Cl->Equalize.Policy.empty());
  // Knob defaults survive for sessions that set a policy themselves.
  EXPECT_DOUBLE_EQ(Cl->Equalize.TriggerThreshold, 0.25);
  EXPECT_EQ(Cl->Equalize.Period, 1);
}

TEST(ClusterIO, RejectsMalformedEqualizeLines) {
  // Every rejection names the offending knob (strict validation: a typo
  // must not silently fall back to a default).
  const std::pair<const char *, const char *> Bad[] = {
      {"device 0 constant a 1\nequalize\n", "policy name"},
      {"device 0 constant a 1\nequalize off\nequalize off\n", "duplicate"},
      {"device 0 constant a 1\nequalize every period\n", "period"},
      {"device 0 constant a 1\nequalize threshold threshold -0.1\n",
       "threshold"},
      {"device 0 constant a 1\nequalize threshold clear -1\n", "clear"},
      {"device 0 constant a 1\nequalize threshold cooldown -1\n",
       "cooldown"},
      {"device 0 constant a 1\nequalize threshold cooldown 1.5\n",
       "cooldown"},
      {"device 0 constant a 1\nequalize threshold breaches 0\n",
       "breaches"},
      {"device 0 constant a 1\nequalize threshold alpha 0\n", "alpha"},
      {"device 0 constant a 1\nequalize threshold alpha 1.5\n", "alpha"},
      {"device 0 constant a 1\nequalize every period 0\n", "period"},
      {"device 0 constant a 1\nequalize arbitrated horizon -1\n",
       "horizon"},
      {"device 0 constant a 1\nequalize arbitrated frobnicate 3\n",
       "frobnicate"},
  };
  for (const auto &[Text, Expect] : Bad) {
    std::istringstream IS(Text);
    std::string Error;
    EXPECT_FALSE(parseCluster(IS, &Error).has_value()) << Text;
    EXPECT_NE(Error.find(Expect), std::string::npos)
        << "'" << Error << "' does not name '" << Expect << "'";
  }
}

TEST(ClusterIO, EqualizePolicyNameResolvesAtSessionCreation) {
  // The parser accepts any policy name — the registry lookup happens in
  // equalize::configFromSpec, so tools report unknown policies with the
  // registered alternatives instead of a generic parse error.
  std::istringstream IS("device 0 constant a 10\nequalize warp\n");
  auto Cl = parseCluster(IS);
  ASSERT_TRUE(Cl.has_value());
  EXPECT_EQ(Cl->Equalize.Policy, "warp");

  auto Cfg = equalize::configFromSpec(Cl->Equalize);
  ASSERT_FALSE(Cfg);
  EXPECT_NE(Cfg.error().find("warp"), std::string::npos);
  EXPECT_NE(Cfg.error().find("arbitrated"), std::string::npos)
      << "unknown-policy diagnostic should list the registered policies: "
      << Cfg.error();
}
