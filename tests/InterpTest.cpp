//===-- tests/InterpTest.cpp - interp library tests -----------------------===//

#include "interp/AkimaSpline.h"
#include "interp/CubicSpline.h"
#include "interp/PiecewiseLinear.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

using namespace fupermod;

namespace {

const std::vector<double> XS = {0.0, 1.0, 2.0, 4.0, 8.0};
const std::vector<double> YS = {1.0, 3.0, 2.0, 6.0, 10.0};

} // namespace

TEST(PiecewiseLinear, PassesThroughKnots) {
  PiecewiseLinear PL(XS, YS);
  for (std::size_t I = 0; I < XS.size(); ++I)
    EXPECT_DOUBLE_EQ(PL.eval(XS[I]), YS[I]);
}

TEST(PiecewiseLinear, LinearBetweenKnots) {
  PiecewiseLinear PL(XS, YS);
  EXPECT_DOUBLE_EQ(PL.eval(0.5), 2.0);
  EXPECT_DOUBLE_EQ(PL.eval(3.0), 4.0);
  EXPECT_DOUBLE_EQ(PL.eval(6.0), 8.0);
}

TEST(PiecewiseLinear, DerivativeIsSegmentSlope) {
  PiecewiseLinear PL(XS, YS);
  EXPECT_DOUBLE_EQ(PL.derivative(0.5), 2.0);
  EXPECT_DOUBLE_EQ(PL.derivative(1.5), -1.0);
  EXPECT_DOUBLE_EQ(PL.derivative(3.0), 2.0);
  EXPECT_DOUBLE_EQ(PL.derivative(5.0), 1.0);
}

TEST(PiecewiseLinear, LinearExtrapolationContinuesEndSegments) {
  PiecewiseLinear PL(XS, YS, Extrapolation::Linear);
  EXPECT_DOUBLE_EQ(PL.eval(-1.0), -1.0); // Slope 2 through (0, 1).
  EXPECT_DOUBLE_EQ(PL.eval(10.0), 12.0); // Slope 1 through (8, 10).
}

TEST(PiecewiseLinear, ClampExtrapolationHoldsBoundaryValues) {
  PiecewiseLinear PL(XS, YS, Extrapolation::Clamp);
  EXPECT_DOUBLE_EQ(PL.eval(-5.0), 1.0);
  EXPECT_DOUBLE_EQ(PL.eval(50.0), 10.0);
  EXPECT_DOUBLE_EQ(PL.derivative(-5.0), 0.0);
  EXPECT_DOUBLE_EQ(PL.derivative(50.0), 0.0);
}

TEST(PiecewiseLinear, SingleKnotIsConstant) {
  std::vector<double> X = {2.0}, Y = {5.0};
  PiecewiseLinear PL(X, Y);
  EXPECT_DOUBLE_EQ(PL.eval(0.0), 5.0);
  EXPECT_DOUBLE_EQ(PL.eval(100.0), 5.0);
  EXPECT_DOUBLE_EQ(PL.derivative(3.0), 0.0);
}

TEST(PiecewiseLinear, Refit) {
  PiecewiseLinear PL(XS, YS);
  std::vector<double> X2 = {0.0, 10.0}, Y2 = {0.0, 10.0};
  PL.fit(X2, Y2, Extrapolation::Linear);
  EXPECT_EQ(PL.size(), 2u);
  EXPECT_DOUBLE_EQ(PL.eval(5.0), 5.0);
}

TEST(IsStrictlyIncreasing, DetectsViolations) {
  std::vector<double> Good = {1.0, 2.0, 3.0};
  std::vector<double> Flat = {1.0, 2.0, 2.0};
  std::vector<double> Down = {1.0, 0.5};
  EXPECT_TRUE(isStrictlyIncreasing(Good));
  EXPECT_FALSE(isStrictlyIncreasing(Flat));
  EXPECT_FALSE(isStrictlyIncreasing(Down));
}

TEST(AkimaSpline, PassesThroughKnots) {
  AkimaSpline Ak(XS, YS);
  for (std::size_t I = 0; I < XS.size(); ++I)
    EXPECT_NEAR(Ak.eval(XS[I]), YS[I], 1e-12);
}

TEST(AkimaSpline, ReproducesStraightLineExactly) {
  std::vector<double> X = {0.0, 1.0, 2.5, 4.0, 7.0};
  std::vector<double> Y;
  for (double V : X)
    Y.push_back(3.0 * V - 2.0);
  AkimaSpline Ak(X, Y);
  for (double T = 0.0; T <= 7.0; T += 0.1) {
    EXPECT_NEAR(Ak.eval(T), 3.0 * T - 2.0, 1e-10);
    EXPECT_NEAR(Ak.derivative(T), 3.0, 1e-10);
  }
}

TEST(AkimaSpline, TwoKnotsDegradeToLine) {
  std::vector<double> X = {1.0, 3.0}, Y = {2.0, 8.0};
  AkimaSpline Ak(X, Y);
  EXPECT_NEAR(Ak.eval(2.0), 5.0, 1e-12);
  EXPECT_NEAR(Ak.derivative(2.0), 3.0, 1e-12);
}

TEST(AkimaSpline, SingleKnotIsConstant) {
  std::vector<double> X = {2.0}, Y = {5.0};
  AkimaSpline Ak(X, Y);
  EXPECT_DOUBLE_EQ(Ak.eval(7.0), 5.0);
}

TEST(AkimaSpline, C1ContinuityAtKnots) {
  AkimaSpline Ak(XS, YS);
  for (std::size_t I = 1; I + 1 < XS.size(); ++I) {
    double Left = Ak.derivative(XS[I] - 1e-9);
    double Right = Ak.derivative(XS[I] + 1e-9);
    EXPECT_NEAR(Left, Right, 1e-5) << "knot " << I;
  }
}

TEST(AkimaSpline, FlatRegionStaysFlat) {
  // Akima's hallmark: a locally flat stretch produces no oscillation.
  // Interior flat segments are exactly flat; the segment adjoining the
  // corner knot may wiggle slightly (the corner tangent is the average of
  // the adjacent slopes) but never by much.
  std::vector<double> X = {0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  std::vector<double> Y = {1.0, 1.0, 1.0, 1.0, 3.0, 5.0, 7.0};
  AkimaSpline Ak(X, Y);
  for (double T = 0.0; T <= 2.0; T += 0.05)
    EXPECT_NEAR(Ak.eval(T), 1.0, 1e-9) << "at " << T;
  // The corner-adjacent Hermite segment (tangents 0 and 1) dips by at
  // most |min H11| = 4/27 of the slope step.
  for (double T = 2.0; T <= 3.0; T += 0.05)
    EXPECT_NEAR(Ak.eval(T), 1.0, 0.16) << "at " << T;
}

TEST(AkimaSpline, LinearExtrapolationUsesEndTangent) {
  std::vector<double> X = {0.0, 1.0, 2.0, 3.0};
  std::vector<double> Y = {0.0, 1.0, 2.0, 3.0};
  AkimaSpline Ak(X, Y, Extrapolation::Linear);
  EXPECT_NEAR(Ak.eval(5.0), 5.0, 1e-9);
  EXPECT_NEAR(Ak.eval(-2.0), -2.0, 1e-9);
}

TEST(AkimaSpline, ClampExtrapolation) {
  std::vector<double> X = {0.0, 1.0, 2.0};
  std::vector<double> Y = {0.0, 1.0, 2.0};
  AkimaSpline Ak(X, Y, Extrapolation::Clamp);
  EXPECT_DOUBLE_EQ(Ak.eval(10.0), 2.0);
  EXPECT_DOUBLE_EQ(Ak.eval(-10.0), 0.0);
  EXPECT_DOUBLE_EQ(Ak.derivative(10.0), 0.0);
}

TEST(AkimaSpline, DerivativeMatchesFiniteDifference) {
  AkimaSpline Ak(XS, YS);
  for (double T = 0.2; T < 7.8; T += 0.23) {
    double H = 1e-6;
    double FD = (Ak.eval(T + H) - Ak.eval(T - H)) / (2.0 * H);
    EXPECT_NEAR(Ak.derivative(T), FD, 1e-4) << "at " << T;
  }
}

// Interpolating a smooth function on a refined grid must reduce the error.
class AkimaConvergenceTest : public ::testing::TestWithParam<int> {};

TEST_P(AkimaConvergenceTest, ErrorShrinksWithRefinement) {
  auto F = [](double X) { return std::sin(X) + 0.3 * X; };
  auto MaxError = [&](int N) {
    std::vector<double> X, Y;
    for (int I = 0; I <= N; ++I) {
      X.push_back(6.0 * I / N);
      Y.push_back(F(X.back()));
    }
    AkimaSpline Ak(X, Y);
    double Err = 0.0;
    for (double T = 0.0; T <= 6.0; T += 0.01)
      Err = std::max(Err, std::fabs(Ak.eval(T) - F(T)));
    return Err;
  };
  int N = GetParam();
  EXPECT_LT(MaxError(2 * N), MaxError(N));
  EXPECT_LT(MaxError(4 * N), 0.02);
}

INSTANTIATE_TEST_SUITE_P(GridSizes, AkimaConvergenceTest,
                         ::testing::Values(8, 12, 16));

TEST(CubicSpline, PassesThroughKnots) {
  CubicSpline Cs(XS, YS);
  for (std::size_t I = 0; I < XS.size(); ++I)
    EXPECT_NEAR(Cs.eval(XS[I]), YS[I], 1e-12);
}

TEST(CubicSpline, ReproducesStraightLineExactly) {
  std::vector<double> X = {0.0, 1.0, 2.5, 4.0, 7.0};
  std::vector<double> Y;
  for (double V : X)
    Y.push_back(-2.0 * V + 1.0);
  CubicSpline Cs(X, Y);
  for (double T = 0.0; T <= 7.0; T += 0.1) {
    EXPECT_NEAR(Cs.eval(T), -2.0 * T + 1.0, 1e-10);
    EXPECT_NEAR(Cs.derivative(T), -2.0, 1e-10);
  }
}

TEST(CubicSpline, NaturalBoundaryConditions) {
  CubicSpline Cs(XS, YS);
  ASSERT_EQ(Cs.secondDerivatives().size(), XS.size());
  EXPECT_DOUBLE_EQ(Cs.secondDerivatives().front(), 0.0);
  EXPECT_DOUBLE_EQ(Cs.secondDerivatives().back(), 0.0);
}

TEST(CubicSpline, C2Continuity) {
  CubicSpline Cs(XS, YS);
  for (std::size_t I = 1; I + 1 < XS.size(); ++I) {
    double Left = Cs.derivative(XS[I] - 1e-9);
    double Right = Cs.derivative(XS[I] + 1e-9);
    EXPECT_NEAR(Left, Right, 1e-5) << "knot " << I;
  }
}

TEST(CubicSpline, DerivativeMatchesFiniteDifference) {
  CubicSpline Cs(XS, YS);
  for (double T = 0.2; T < 7.8; T += 0.31) {
    double H = 1e-6;
    double FD = (Cs.eval(T + H) - Cs.eval(T - H)) / (2.0 * H);
    EXPECT_NEAR(Cs.derivative(T), FD, 1e-4) << "at " << T;
  }
}

TEST(CubicSpline, InterpolatesSmoothFunctionsAccurately) {
  auto F = [](double X) { return std::cos(X) + 0.1 * X * X; };
  std::vector<double> X, Y;
  for (int I = 0; I <= 40; ++I) {
    X.push_back(6.0 * I / 40.0);
    Y.push_back(F(X.back()));
  }
  CubicSpline Cs(X, Y);
  for (double T = 0.3; T < 5.7; T += 0.07)
    EXPECT_NEAR(Cs.eval(T), F(T), 2e-4) << "at " << T;
}

TEST(CubicSpline, OscillatesMoreThanAkimaAroundOutlier) {
  // The design-choice check (paper ref [15]): a single outlier in
  // otherwise flat data makes the C2 cubic spline ring over several
  // segments, while Akima's local weights confine the disturbance.
  std::vector<double> X, Y;
  for (int I = 0; I <= 10; ++I) {
    X.push_back(static_cast<double>(I));
    Y.push_back(I == 5 ? 2.0 : 1.0);
  }
  CubicSpline Cubic(X, Y);
  AkimaSpline Akima(X, Y);
  // Measure the maximum deviation from the flat level far from the
  // outlier (segments [0,3] and [7,10]).
  double MaxCubic = 0.0, MaxAkima = 0.0;
  for (double T = 0.0; T <= 3.0; T += 0.01) {
    MaxCubic = std::max(MaxCubic, std::fabs(Cubic.eval(T) - 1.0));
    MaxAkima = std::max(MaxAkima, std::fabs(Akima.eval(T) - 1.0));
  }
  for (double T = 7.0; T <= 10.0; T += 0.01) {
    MaxCubic = std::max(MaxCubic, std::fabs(Cubic.eval(T) - 1.0));
    MaxAkima = std::max(MaxAkima, std::fabs(Akima.eval(T) - 1.0));
  }
  EXPECT_GT(MaxCubic, 5.0 * std::max(MaxAkima, 1e-12));
  EXPECT_LT(MaxAkima, 1e-9); // Akima: strictly local influence.
}

// evalMany must agree bit-for-bit with per-point eval: the batched path
// only changes how the segment is found, never the arithmetic inside it.
TEST(EvalMany, MatchesScalarEvalOnAscendingBatch) {
  PiecewiseLinear PL(XS, YS);
  AkimaSpline Ak(XS, YS);
  std::vector<double> Q;
  for (double X = -1.0; X <= 9.0; X += 0.125)
    Q.push_back(X); // Includes both extrapolation sides.
  std::vector<double> Out(Q.size());
  PL.evalMany(Q, Out);
  for (std::size_t I = 0; I < Q.size(); ++I)
    EXPECT_EQ(Out[I], PL.eval(Q[I])) << "piecewise at " << Q[I];
  Ak.evalMany(Q, Out);
  for (std::size_t I = 0; I < Q.size(); ++I)
    EXPECT_EQ(Out[I], Ak.eval(Q[I])) << "akima at " << Q[I];
}

TEST(EvalMany, OutOfOrderBatchFallsBackToScalar) {
  PiecewiseLinear PL(XS, YS);
  AkimaSpline Ak(XS, YS);
  const std::vector<double> Q = {5.0, 0.5, 7.5, 3.0, 3.0, -2.0, 9.5};
  std::vector<double> Out(Q.size());
  PL.evalMany(Q, Out);
  for (std::size_t I = 0; I < Q.size(); ++I)
    EXPECT_EQ(Out[I], PL.eval(Q[I])) << "piecewise at " << Q[I];
  Ak.evalMany(Q, Out);
  for (std::size_t I = 0; I < Q.size(); ++I)
    EXPECT_EQ(Out[I], Ak.eval(Q[I])) << "akima at " << Q[I];
}

TEST(EvalMany, EmptyAndSingletonBatches) {
  PiecewiseLinear PL(XS, YS);
  std::vector<double> None;
  PL.evalMany(None, None); // Must not touch memory.
  std::vector<double> One = {2.5}, Out(1);
  PL.evalMany(One, Out);
  EXPECT_EQ(Out[0], PL.eval(2.5));
}
