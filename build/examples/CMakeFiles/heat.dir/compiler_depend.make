# Empty compiler generated dependencies file for heat.
# This may be replaced when dependencies are built.
