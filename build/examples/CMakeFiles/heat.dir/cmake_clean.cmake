file(REMOVE_RECURSE
  "CMakeFiles/heat.dir/heat.cpp.o"
  "CMakeFiles/heat.dir/heat.cpp.o.d"
  "heat"
  "heat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
