file(REMOVE_RECURSE
  "CMakeFiles/cluster_tour.dir/cluster_tour.cpp.o"
  "CMakeFiles/cluster_tour.dir/cluster_tour.cpp.o.d"
  "cluster_tour"
  "cluster_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
