
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/AdaptiveMatMul.cpp" "src/apps/CMakeFiles/fupermod_apps.dir/AdaptiveMatMul.cpp.o" "gcc" "src/apps/CMakeFiles/fupermod_apps.dir/AdaptiveMatMul.cpp.o.d"
  "/root/repo/src/apps/Jacobi.cpp" "src/apps/CMakeFiles/fupermod_apps.dir/Jacobi.cpp.o" "gcc" "src/apps/CMakeFiles/fupermod_apps.dir/Jacobi.cpp.o.d"
  "/root/repo/src/apps/MatMul.cpp" "src/apps/CMakeFiles/fupermod_apps.dir/MatMul.cpp.o" "gcc" "src/apps/CMakeFiles/fupermod_apps.dir/MatMul.cpp.o.d"
  "/root/repo/src/apps/MatrixPartition2D.cpp" "src/apps/CMakeFiles/fupermod_apps.dir/MatrixPartition2D.cpp.o" "gcc" "src/apps/CMakeFiles/fupermod_apps.dir/MatrixPartition2D.cpp.o.d"
  "/root/repo/src/apps/Stencil.cpp" "src/apps/CMakeFiles/fupermod_apps.dir/Stencil.cpp.o" "gcc" "src/apps/CMakeFiles/fupermod_apps.dir/Stencil.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fupermod_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fupermod_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mpp/CMakeFiles/fupermod_mpp.dir/DependInfo.cmake"
  "/root/repo/build/src/blas/CMakeFiles/fupermod_blas.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/fupermod_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/fupermod_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/fupermod_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
