# Empty compiler generated dependencies file for fupermod_apps.
# This may be replaced when dependencies are built.
