file(REMOVE_RECURSE
  "CMakeFiles/fupermod_apps.dir/AdaptiveMatMul.cpp.o"
  "CMakeFiles/fupermod_apps.dir/AdaptiveMatMul.cpp.o.d"
  "CMakeFiles/fupermod_apps.dir/Jacobi.cpp.o"
  "CMakeFiles/fupermod_apps.dir/Jacobi.cpp.o.d"
  "CMakeFiles/fupermod_apps.dir/MatMul.cpp.o"
  "CMakeFiles/fupermod_apps.dir/MatMul.cpp.o.d"
  "CMakeFiles/fupermod_apps.dir/MatrixPartition2D.cpp.o"
  "CMakeFiles/fupermod_apps.dir/MatrixPartition2D.cpp.o.d"
  "CMakeFiles/fupermod_apps.dir/Stencil.cpp.o"
  "CMakeFiles/fupermod_apps.dir/Stencil.cpp.o.d"
  "libfupermod_apps.a"
  "libfupermod_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fupermod_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
