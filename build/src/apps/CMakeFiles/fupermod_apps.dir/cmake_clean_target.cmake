file(REMOVE_RECURSE
  "libfupermod_apps.a"
)
