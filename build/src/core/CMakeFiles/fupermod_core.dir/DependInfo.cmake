
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/Benchmark.cpp" "src/core/CMakeFiles/fupermod_core.dir/Benchmark.cpp.o" "gcc" "src/core/CMakeFiles/fupermod_core.dir/Benchmark.cpp.o.d"
  "/root/repo/src/core/Dynamic.cpp" "src/core/CMakeFiles/fupermod_core.dir/Dynamic.cpp.o" "gcc" "src/core/CMakeFiles/fupermod_core.dir/Dynamic.cpp.o.d"
  "/root/repo/src/core/GemmKernel.cpp" "src/core/CMakeFiles/fupermod_core.dir/GemmKernel.cpp.o" "gcc" "src/core/CMakeFiles/fupermod_core.dir/GemmKernel.cpp.o.d"
  "/root/repo/src/core/Metrics.cpp" "src/core/CMakeFiles/fupermod_core.dir/Metrics.cpp.o" "gcc" "src/core/CMakeFiles/fupermod_core.dir/Metrics.cpp.o.d"
  "/root/repo/src/core/Model.cpp" "src/core/CMakeFiles/fupermod_core.dir/Model.cpp.o" "gcc" "src/core/CMakeFiles/fupermod_core.dir/Model.cpp.o.d"
  "/root/repo/src/core/ModelIO.cpp" "src/core/CMakeFiles/fupermod_core.dir/ModelIO.cpp.o" "gcc" "src/core/CMakeFiles/fupermod_core.dir/ModelIO.cpp.o.d"
  "/root/repo/src/core/Partition.cpp" "src/core/CMakeFiles/fupermod_core.dir/Partition.cpp.o" "gcc" "src/core/CMakeFiles/fupermod_core.dir/Partition.cpp.o.d"
  "/root/repo/src/core/Partitioners.cpp" "src/core/CMakeFiles/fupermod_core.dir/Partitioners.cpp.o" "gcc" "src/core/CMakeFiles/fupermod_core.dir/Partitioners.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/fupermod_support.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/fupermod_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/fupermod_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/blas/CMakeFiles/fupermod_blas.dir/DependInfo.cmake"
  "/root/repo/build/src/mpp/CMakeFiles/fupermod_mpp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fupermod_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
