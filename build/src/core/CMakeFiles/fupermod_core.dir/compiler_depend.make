# Empty compiler generated dependencies file for fupermod_core.
# This may be replaced when dependencies are built.
