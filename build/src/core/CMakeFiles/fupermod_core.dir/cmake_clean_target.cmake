file(REMOVE_RECURSE
  "libfupermod_core.a"
)
