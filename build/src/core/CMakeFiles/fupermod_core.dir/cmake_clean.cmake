file(REMOVE_RECURSE
  "CMakeFiles/fupermod_core.dir/Benchmark.cpp.o"
  "CMakeFiles/fupermod_core.dir/Benchmark.cpp.o.d"
  "CMakeFiles/fupermod_core.dir/Dynamic.cpp.o"
  "CMakeFiles/fupermod_core.dir/Dynamic.cpp.o.d"
  "CMakeFiles/fupermod_core.dir/GemmKernel.cpp.o"
  "CMakeFiles/fupermod_core.dir/GemmKernel.cpp.o.d"
  "CMakeFiles/fupermod_core.dir/Metrics.cpp.o"
  "CMakeFiles/fupermod_core.dir/Metrics.cpp.o.d"
  "CMakeFiles/fupermod_core.dir/Model.cpp.o"
  "CMakeFiles/fupermod_core.dir/Model.cpp.o.d"
  "CMakeFiles/fupermod_core.dir/ModelIO.cpp.o"
  "CMakeFiles/fupermod_core.dir/ModelIO.cpp.o.d"
  "CMakeFiles/fupermod_core.dir/Partition.cpp.o"
  "CMakeFiles/fupermod_core.dir/Partition.cpp.o.d"
  "CMakeFiles/fupermod_core.dir/Partitioners.cpp.o"
  "CMakeFiles/fupermod_core.dir/Partitioners.cpp.o.d"
  "libfupermod_core.a"
  "libfupermod_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fupermod_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
