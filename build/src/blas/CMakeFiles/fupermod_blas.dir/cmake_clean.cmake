file(REMOVE_RECURSE
  "CMakeFiles/fupermod_blas.dir/Gemm.cpp.o"
  "CMakeFiles/fupermod_blas.dir/Gemm.cpp.o.d"
  "libfupermod_blas.a"
  "libfupermod_blas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fupermod_blas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
