# Empty dependencies file for fupermod_blas.
# This may be replaced when dependencies are built.
