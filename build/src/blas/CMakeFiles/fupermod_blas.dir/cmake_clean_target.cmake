file(REMOVE_RECURSE
  "libfupermod_blas.a"
)
