
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/commperf/HockneyFit.cpp" "src/commperf/CMakeFiles/fupermod_commperf.dir/HockneyFit.cpp.o" "gcc" "src/commperf/CMakeFiles/fupermod_commperf.dir/HockneyFit.cpp.o.d"
  "/root/repo/src/commperf/PingPong.cpp" "src/commperf/CMakeFiles/fupermod_commperf.dir/PingPong.cpp.o" "gcc" "src/commperf/CMakeFiles/fupermod_commperf.dir/PingPong.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mpp/CMakeFiles/fupermod_mpp.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/fupermod_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
