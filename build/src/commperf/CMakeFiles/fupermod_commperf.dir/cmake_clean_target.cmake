file(REMOVE_RECURSE
  "libfupermod_commperf.a"
)
