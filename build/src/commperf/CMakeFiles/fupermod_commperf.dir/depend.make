# Empty dependencies file for fupermod_commperf.
# This may be replaced when dependencies are built.
