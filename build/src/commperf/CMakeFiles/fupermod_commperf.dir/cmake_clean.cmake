file(REMOVE_RECURSE
  "CMakeFiles/fupermod_commperf.dir/HockneyFit.cpp.o"
  "CMakeFiles/fupermod_commperf.dir/HockneyFit.cpp.o.d"
  "CMakeFiles/fupermod_commperf.dir/PingPong.cpp.o"
  "CMakeFiles/fupermod_commperf.dir/PingPong.cpp.o.d"
  "libfupermod_commperf.a"
  "libfupermod_commperf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fupermod_commperf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
