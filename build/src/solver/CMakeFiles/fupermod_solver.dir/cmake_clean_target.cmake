file(REMOVE_RECURSE
  "libfupermod_solver.a"
)
