# Empty dependencies file for fupermod_solver.
# This may be replaced when dependencies are built.
