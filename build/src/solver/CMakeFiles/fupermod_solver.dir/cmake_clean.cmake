file(REMOVE_RECURSE
  "CMakeFiles/fupermod_solver.dir/LinearAlgebra.cpp.o"
  "CMakeFiles/fupermod_solver.dir/LinearAlgebra.cpp.o.d"
  "CMakeFiles/fupermod_solver.dir/NewtonSolver.cpp.o"
  "CMakeFiles/fupermod_solver.dir/NewtonSolver.cpp.o.d"
  "CMakeFiles/fupermod_solver.dir/RootFinding.cpp.o"
  "CMakeFiles/fupermod_solver.dir/RootFinding.cpp.o.d"
  "libfupermod_solver.a"
  "libfupermod_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fupermod_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
