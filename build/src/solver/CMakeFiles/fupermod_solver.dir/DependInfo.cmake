
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solver/LinearAlgebra.cpp" "src/solver/CMakeFiles/fupermod_solver.dir/LinearAlgebra.cpp.o" "gcc" "src/solver/CMakeFiles/fupermod_solver.dir/LinearAlgebra.cpp.o.d"
  "/root/repo/src/solver/NewtonSolver.cpp" "src/solver/CMakeFiles/fupermod_solver.dir/NewtonSolver.cpp.o" "gcc" "src/solver/CMakeFiles/fupermod_solver.dir/NewtonSolver.cpp.o.d"
  "/root/repo/src/solver/RootFinding.cpp" "src/solver/CMakeFiles/fupermod_solver.dir/RootFinding.cpp.o" "gcc" "src/solver/CMakeFiles/fupermod_solver.dir/RootFinding.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/fupermod_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
