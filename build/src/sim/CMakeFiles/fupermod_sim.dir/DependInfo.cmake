
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/Cluster.cpp" "src/sim/CMakeFiles/fupermod_sim.dir/Cluster.cpp.o" "gcc" "src/sim/CMakeFiles/fupermod_sim.dir/Cluster.cpp.o.d"
  "/root/repo/src/sim/ClusterIO.cpp" "src/sim/CMakeFiles/fupermod_sim.dir/ClusterIO.cpp.o" "gcc" "src/sim/CMakeFiles/fupermod_sim.dir/ClusterIO.cpp.o.d"
  "/root/repo/src/sim/DeviceProfile.cpp" "src/sim/CMakeFiles/fupermod_sim.dir/DeviceProfile.cpp.o" "gcc" "src/sim/CMakeFiles/fupermod_sim.dir/DeviceProfile.cpp.o.d"
  "/root/repo/src/sim/SimDevice.cpp" "src/sim/CMakeFiles/fupermod_sim.dir/SimDevice.cpp.o" "gcc" "src/sim/CMakeFiles/fupermod_sim.dir/SimDevice.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/fupermod_support.dir/DependInfo.cmake"
  "/root/repo/build/src/mpp/CMakeFiles/fupermod_mpp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
