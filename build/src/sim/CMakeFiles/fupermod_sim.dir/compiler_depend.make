# Empty compiler generated dependencies file for fupermod_sim.
# This may be replaced when dependencies are built.
