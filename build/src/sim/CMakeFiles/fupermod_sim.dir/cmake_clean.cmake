file(REMOVE_RECURSE
  "CMakeFiles/fupermod_sim.dir/Cluster.cpp.o"
  "CMakeFiles/fupermod_sim.dir/Cluster.cpp.o.d"
  "CMakeFiles/fupermod_sim.dir/ClusterIO.cpp.o"
  "CMakeFiles/fupermod_sim.dir/ClusterIO.cpp.o.d"
  "CMakeFiles/fupermod_sim.dir/DeviceProfile.cpp.o"
  "CMakeFiles/fupermod_sim.dir/DeviceProfile.cpp.o.d"
  "CMakeFiles/fupermod_sim.dir/SimDevice.cpp.o"
  "CMakeFiles/fupermod_sim.dir/SimDevice.cpp.o.d"
  "libfupermod_sim.a"
  "libfupermod_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fupermod_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
