file(REMOVE_RECURSE
  "libfupermod_sim.a"
)
