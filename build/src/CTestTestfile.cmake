# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("interp")
subdirs("solver")
subdirs("blas")
subdirs("mpp")
subdirs("commperf")
subdirs("sim")
subdirs("core")
subdirs("apps")
