
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpp/Comm.cpp" "src/mpp/CMakeFiles/fupermod_mpp.dir/Comm.cpp.o" "gcc" "src/mpp/CMakeFiles/fupermod_mpp.dir/Comm.cpp.o.d"
  "/root/repo/src/mpp/CostModel.cpp" "src/mpp/CMakeFiles/fupermod_mpp.dir/CostModel.cpp.o" "gcc" "src/mpp/CMakeFiles/fupermod_mpp.dir/CostModel.cpp.o.d"
  "/root/repo/src/mpp/Group.cpp" "src/mpp/CMakeFiles/fupermod_mpp.dir/Group.cpp.o" "gcc" "src/mpp/CMakeFiles/fupermod_mpp.dir/Group.cpp.o.d"
  "/root/repo/src/mpp/Runtime.cpp" "src/mpp/CMakeFiles/fupermod_mpp.dir/Runtime.cpp.o" "gcc" "src/mpp/CMakeFiles/fupermod_mpp.dir/Runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/fupermod_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
