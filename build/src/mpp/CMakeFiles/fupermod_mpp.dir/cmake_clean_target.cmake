file(REMOVE_RECURSE
  "libfupermod_mpp.a"
)
