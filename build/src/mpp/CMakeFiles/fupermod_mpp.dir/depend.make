# Empty dependencies file for fupermod_mpp.
# This may be replaced when dependencies are built.
