file(REMOVE_RECURSE
  "CMakeFiles/fupermod_mpp.dir/Comm.cpp.o"
  "CMakeFiles/fupermod_mpp.dir/Comm.cpp.o.d"
  "CMakeFiles/fupermod_mpp.dir/CostModel.cpp.o"
  "CMakeFiles/fupermod_mpp.dir/CostModel.cpp.o.d"
  "CMakeFiles/fupermod_mpp.dir/Group.cpp.o"
  "CMakeFiles/fupermod_mpp.dir/Group.cpp.o.d"
  "CMakeFiles/fupermod_mpp.dir/Runtime.cpp.o"
  "CMakeFiles/fupermod_mpp.dir/Runtime.cpp.o.d"
  "libfupermod_mpp.a"
  "libfupermod_mpp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fupermod_mpp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
