# Empty dependencies file for fupermod_interp.
# This may be replaced when dependencies are built.
