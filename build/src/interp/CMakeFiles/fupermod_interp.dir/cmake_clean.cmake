file(REMOVE_RECURSE
  "CMakeFiles/fupermod_interp.dir/AkimaSpline.cpp.o"
  "CMakeFiles/fupermod_interp.dir/AkimaSpline.cpp.o.d"
  "CMakeFiles/fupermod_interp.dir/CubicSpline.cpp.o"
  "CMakeFiles/fupermod_interp.dir/CubicSpline.cpp.o.d"
  "CMakeFiles/fupermod_interp.dir/PiecewiseLinear.cpp.o"
  "CMakeFiles/fupermod_interp.dir/PiecewiseLinear.cpp.o.d"
  "libfupermod_interp.a"
  "libfupermod_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fupermod_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
