
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/interp/AkimaSpline.cpp" "src/interp/CMakeFiles/fupermod_interp.dir/AkimaSpline.cpp.o" "gcc" "src/interp/CMakeFiles/fupermod_interp.dir/AkimaSpline.cpp.o.d"
  "/root/repo/src/interp/CubicSpline.cpp" "src/interp/CMakeFiles/fupermod_interp.dir/CubicSpline.cpp.o" "gcc" "src/interp/CMakeFiles/fupermod_interp.dir/CubicSpline.cpp.o.d"
  "/root/repo/src/interp/PiecewiseLinear.cpp" "src/interp/CMakeFiles/fupermod_interp.dir/PiecewiseLinear.cpp.o" "gcc" "src/interp/CMakeFiles/fupermod_interp.dir/PiecewiseLinear.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/fupermod_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
