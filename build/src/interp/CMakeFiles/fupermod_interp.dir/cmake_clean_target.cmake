file(REMOVE_RECURSE
  "libfupermod_interp.a"
)
