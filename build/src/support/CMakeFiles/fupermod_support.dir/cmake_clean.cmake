file(REMOVE_RECURSE
  "CMakeFiles/fupermod_support.dir/Options.cpp.o"
  "CMakeFiles/fupermod_support.dir/Options.cpp.o.d"
  "CMakeFiles/fupermod_support.dir/Statistics.cpp.o"
  "CMakeFiles/fupermod_support.dir/Statistics.cpp.o.d"
  "CMakeFiles/fupermod_support.dir/Table.cpp.o"
  "CMakeFiles/fupermod_support.dir/Table.cpp.o.d"
  "libfupermod_support.a"
  "libfupermod_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fupermod_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
