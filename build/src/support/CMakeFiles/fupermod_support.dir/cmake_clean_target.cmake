file(REMOVE_RECURSE
  "libfupermod_support.a"
)
