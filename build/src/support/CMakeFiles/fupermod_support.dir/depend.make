# Empty dependencies file for fupermod_support.
# This may be replaced when dependencies are built.
