file(REMOVE_RECURSE
  "CMakeFiles/StencilTest.dir/StencilTest.cpp.o"
  "CMakeFiles/StencilTest.dir/StencilTest.cpp.o.d"
  "StencilTest"
  "StencilTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/StencilTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
