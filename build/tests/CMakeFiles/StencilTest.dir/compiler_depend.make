# Empty compiler generated dependencies file for StencilTest.
# This may be replaced when dependencies are built.
