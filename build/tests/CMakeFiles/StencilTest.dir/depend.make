# Empty dependencies file for StencilTest.
# This may be replaced when dependencies are built.
