file(REMOVE_RECURSE
  "CMakeFiles/MatrixPartition2DTest.dir/MatrixPartition2DTest.cpp.o"
  "CMakeFiles/MatrixPartition2DTest.dir/MatrixPartition2DTest.cpp.o.d"
  "MatrixPartition2DTest"
  "MatrixPartition2DTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/MatrixPartition2DTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
