# Empty dependencies file for MatrixPartition2DTest.
# This may be replaced when dependencies are built.
