file(REMOVE_RECURSE
  "CMakeFiles/ClusterIOTest.dir/ClusterIOTest.cpp.o"
  "CMakeFiles/ClusterIOTest.dir/ClusterIOTest.cpp.o.d"
  "ClusterIOTest"
  "ClusterIOTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ClusterIOTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
