# Empty compiler generated dependencies file for ClusterIOTest.
# This may be replaced when dependencies are built.
