# Empty compiler generated dependencies file for OptionsTest.
# This may be replaced when dependencies are built.
