file(REMOVE_RECURSE
  "CMakeFiles/OptionsTest.dir/OptionsTest.cpp.o"
  "CMakeFiles/OptionsTest.dir/OptionsTest.cpp.o.d"
  "OptionsTest"
  "OptionsTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/OptionsTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
