# Empty compiler generated dependencies file for StatisticsTest.
# This may be replaced when dependencies are built.
