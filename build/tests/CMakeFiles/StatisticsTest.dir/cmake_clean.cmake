file(REMOVE_RECURSE
  "CMakeFiles/StatisticsTest.dir/StatisticsTest.cpp.o"
  "CMakeFiles/StatisticsTest.dir/StatisticsTest.cpp.o.d"
  "StatisticsTest"
  "StatisticsTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/StatisticsTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
