file(REMOVE_RECURSE
  "CMakeFiles/DynamicTest.dir/DynamicTest.cpp.o"
  "CMakeFiles/DynamicTest.dir/DynamicTest.cpp.o.d"
  "DynamicTest"
  "DynamicTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/DynamicTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
