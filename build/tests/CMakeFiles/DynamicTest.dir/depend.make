# Empty dependencies file for DynamicTest.
# This may be replaced when dependencies are built.
