file(REMOVE_RECURSE
  "CMakeFiles/PartitionersTest.dir/PartitionersTest.cpp.o"
  "CMakeFiles/PartitionersTest.dir/PartitionersTest.cpp.o.d"
  "PartitionersTest"
  "PartitionersTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/PartitionersTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
