# Empty compiler generated dependencies file for PartitionersTest.
# This may be replaced when dependencies are built.
