# Empty compiler generated dependencies file for BenchmarkTest.
# This may be replaced when dependencies are built.
