# Empty compiler generated dependencies file for CommPerfTest.
# This may be replaced when dependencies are built.
