file(REMOVE_RECURSE
  "CMakeFiles/CommPerfTest.dir/CommPerfTest.cpp.o"
  "CMakeFiles/CommPerfTest.dir/CommPerfTest.cpp.o.d"
  "CommPerfTest"
  "CommPerfTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/CommPerfTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
