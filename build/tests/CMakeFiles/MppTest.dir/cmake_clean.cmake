file(REMOVE_RECURSE
  "CMakeFiles/MppTest.dir/MppTest.cpp.o"
  "CMakeFiles/MppTest.dir/MppTest.cpp.o.d"
  "MppTest"
  "MppTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/MppTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
