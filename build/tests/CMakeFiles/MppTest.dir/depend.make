# Empty dependencies file for MppTest.
# This may be replaced when dependencies are built.
