file(REMOVE_RECURSE
  "CMakeFiles/ModelIOTest.dir/ModelIOTest.cpp.o"
  "CMakeFiles/ModelIOTest.dir/ModelIOTest.cpp.o.d"
  "ModelIOTest"
  "ModelIOTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ModelIOTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
