# Empty dependencies file for ModelIOTest.
# This may be replaced when dependencies are built.
