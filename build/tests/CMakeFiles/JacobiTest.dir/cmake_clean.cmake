file(REMOVE_RECURSE
  "CMakeFiles/JacobiTest.dir/JacobiTest.cpp.o"
  "CMakeFiles/JacobiTest.dir/JacobiTest.cpp.o.d"
  "JacobiTest"
  "JacobiTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/JacobiTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
