# Empty dependencies file for JacobiTest.
# This may be replaced when dependencies are built.
