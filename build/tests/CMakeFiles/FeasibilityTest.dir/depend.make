# Empty dependencies file for FeasibilityTest.
# This may be replaced when dependencies are built.
