file(REMOVE_RECURSE
  "CMakeFiles/FeasibilityTest.dir/FeasibilityTest.cpp.o"
  "CMakeFiles/FeasibilityTest.dir/FeasibilityTest.cpp.o.d"
  "FeasibilityTest"
  "FeasibilityTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/FeasibilityTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
