file(REMOVE_RECURSE
  "CMakeFiles/InterpTest.dir/InterpTest.cpp.o"
  "CMakeFiles/InterpTest.dir/InterpTest.cpp.o.d"
  "InterpTest"
  "InterpTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/InterpTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
