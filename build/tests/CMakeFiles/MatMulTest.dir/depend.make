# Empty dependencies file for MatMulTest.
# This may be replaced when dependencies are built.
