file(REMOVE_RECURSE
  "CMakeFiles/MatMulTest.dir/MatMulTest.cpp.o"
  "CMakeFiles/MatMulTest.dir/MatMulTest.cpp.o.d"
  "MatMulTest"
  "MatMulTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/MatMulTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
