# Empty dependencies file for RandomTest.
# This may be replaced when dependencies are built.
