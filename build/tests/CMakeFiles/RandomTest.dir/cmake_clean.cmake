file(REMOVE_RECURSE
  "CMakeFiles/RandomTest.dir/RandomTest.cpp.o"
  "CMakeFiles/RandomTest.dir/RandomTest.cpp.o.d"
  "RandomTest"
  "RandomTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/RandomTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
