# Empty compiler generated dependencies file for PartitionTest.
# This may be replaced when dependencies are built.
