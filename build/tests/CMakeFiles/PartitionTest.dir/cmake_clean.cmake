file(REMOVE_RECURSE
  "CMakeFiles/PartitionTest.dir/PartitionTest.cpp.o"
  "CMakeFiles/PartitionTest.dir/PartitionTest.cpp.o.d"
  "PartitionTest"
  "PartitionTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/PartitionTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
