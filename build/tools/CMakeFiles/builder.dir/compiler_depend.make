# Empty compiler generated dependencies file for builder.
# This may be replaced when dependencies are built.
