file(REMOVE_RECURSE
  "CMakeFiles/builder.dir/builder.cpp.o"
  "CMakeFiles/builder.dir/builder.cpp.o.d"
  "builder"
  "builder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/builder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
