file(REMOVE_RECURSE
  "CMakeFiles/partitioner.dir/partitioner.cpp.o"
  "CMakeFiles/partitioner.dir/partitioner.cpp.o.d"
  "partitioner"
  "partitioner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partitioner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
