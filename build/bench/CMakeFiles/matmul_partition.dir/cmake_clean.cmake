file(REMOVE_RECURSE
  "CMakeFiles/matmul_partition.dir/matmul_partition.cpp.o"
  "CMakeFiles/matmul_partition.dir/matmul_partition.cpp.o.d"
  "matmul_partition"
  "matmul_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matmul_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
