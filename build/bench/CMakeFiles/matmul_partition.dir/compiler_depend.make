# Empty compiler generated dependencies file for matmul_partition.
# This may be replaced when dependencies are built.
