# Empty dependencies file for static_partitioning.
# This may be replaced when dependencies are built.
