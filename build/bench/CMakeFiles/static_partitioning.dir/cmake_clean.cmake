file(REMOVE_RECURSE
  "CMakeFiles/static_partitioning.dir/static_partitioning.cpp.o"
  "CMakeFiles/static_partitioning.dir/static_partitioning.cpp.o.d"
  "static_partitioning"
  "static_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/static_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
