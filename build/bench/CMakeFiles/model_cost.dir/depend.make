# Empty dependencies file for model_cost.
# This may be replaced when dependencies are built.
