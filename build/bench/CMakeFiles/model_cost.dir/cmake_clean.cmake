file(REMOVE_RECURSE
  "CMakeFiles/model_cost.dir/model_cost.cpp.o"
  "CMakeFiles/model_cost.dir/model_cost.cpp.o.d"
  "model_cost"
  "model_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
