file(REMOVE_RECURSE
  "CMakeFiles/adaptive_matmul.dir/adaptive_matmul.cpp.o"
  "CMakeFiles/adaptive_matmul.dir/adaptive_matmul.cpp.o.d"
  "adaptive_matmul"
  "adaptive_matmul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_matmul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
