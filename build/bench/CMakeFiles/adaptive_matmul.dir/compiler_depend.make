# Empty compiler generated dependencies file for adaptive_matmul.
# This may be replaced when dependencies are built.
