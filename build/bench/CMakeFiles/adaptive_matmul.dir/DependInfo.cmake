
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/adaptive_matmul.cpp" "bench/CMakeFiles/adaptive_matmul.dir/adaptive_matmul.cpp.o" "gcc" "bench/CMakeFiles/adaptive_matmul.dir/adaptive_matmul.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fupermod_core.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/fupermod_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fupermod_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/commperf/CMakeFiles/fupermod_commperf.dir/DependInfo.cmake"
  "/root/repo/build/src/mpp/CMakeFiles/fupermod_mpp.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/fupermod_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/fupermod_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/blas/CMakeFiles/fupermod_blas.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/fupermod_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
