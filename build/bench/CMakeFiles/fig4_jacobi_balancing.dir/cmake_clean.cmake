file(REMOVE_RECURSE
  "CMakeFiles/fig4_jacobi_balancing.dir/fig4_jacobi_balancing.cpp.o"
  "CMakeFiles/fig4_jacobi_balancing.dir/fig4_jacobi_balancing.cpp.o.d"
  "fig4_jacobi_balancing"
  "fig4_jacobi_balancing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_jacobi_balancing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
