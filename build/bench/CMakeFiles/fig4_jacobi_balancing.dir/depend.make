# Empty dependencies file for fig4_jacobi_balancing.
# This may be replaced when dependencies are built.
