# Empty dependencies file for fig2_speed_functions.
# This may be replaced when dependencies are built.
