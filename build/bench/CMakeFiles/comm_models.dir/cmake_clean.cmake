file(REMOVE_RECURSE
  "CMakeFiles/comm_models.dir/comm_models.cpp.o"
  "CMakeFiles/comm_models.dir/comm_models.cpp.o.d"
  "comm_models"
  "comm_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comm_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
