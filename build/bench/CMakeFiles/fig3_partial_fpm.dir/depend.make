# Empty dependencies file for fig3_partial_fpm.
# This may be replaced when dependencies are built.
