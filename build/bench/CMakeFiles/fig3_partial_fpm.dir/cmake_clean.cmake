file(REMOVE_RECURSE
  "CMakeFiles/fig3_partial_fpm.dir/fig3_partial_fpm.cpp.o"
  "CMakeFiles/fig3_partial_fpm.dir/fig3_partial_fpm.cpp.o.d"
  "fig3_partial_fpm"
  "fig3_partial_fpm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_partial_fpm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
