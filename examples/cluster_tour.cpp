//===-- examples/cluster_tour.cpp - inspect the simulated platform --------===//
//
// A tour of the simulated heterogeneous platform: prints every device's
// ground-truth speed function (the thing functional performance models
// approximate), the communication topology, and a side-by-side of what
// each model kind predicts after benchmarking. Useful for understanding
// the other examples and for designing new cluster presets.
//
//===----------------------------------------------------------------------===//

#include "core/Benchmark.h"
#include "core/Model.h"
#include "sim/Cluster.h"
#include "support/Table.h"

#include <iostream>
#include <memory>

using namespace fupermod;

int main() {
  std::cout << "Simulated platform tour\n=======================\n\n";

  Cluster Cl = makeHclLikeCluster(true);

  std::cout << "## devices\n\n";
  Table Dev({"rank", "name", "node", "mem_limit(units)"});
  for (int R = 0; R < Cl.size(); ++R) {
    const DeviceProfile &P = Cl.Devices[static_cast<std::size_t>(R)];
    std::string Lim = std::isinf(P.memoryLimitUnits())
                          ? "unlimited"
                          : Table::num(P.memoryLimitUnits(), 0);
    Dev.addRow({Table::num(static_cast<long long>(R)), P.name(),
                Table::num(static_cast<long long>(
                    Cl.NodeOfRank[static_cast<std::size_t>(R)])),
                Lim});
  }
  Dev.print(std::cout);

  std::cout << "\n## ground-truth speed functions (units/second)\n\n";
  std::vector<std::string> Headers = {"size"};
  for (int R = 0; R < Cl.size(); ++R)
    Headers.push_back("dev" + std::to_string(R));
  Table Speeds(std::move(Headers));
  for (double D : {100.0, 500.0, 1000.0, 2000.0, 4000.0, 8000.0, 16000.0,
                   32000.0}) {
    std::vector<std::string> Row = {Table::num(D, 0)};
    for (int R = 0; R < Cl.size(); ++R)
      Row.push_back(Table::num(
          Cl.Devices[static_cast<std::size_t>(R)].speed(D), 1));
    Speeds.addRow(std::move(Row));
  }
  Speeds.print(std::cout);
  std::cout << "\nnote the different cliff locations, the contended cores "
               "and the GPU whose\nspeed *grows* with size until its memory "
               "limit (12000 units), after which\nit falls back to the "
               "slower out-of-core mode.\n";

  std::cout << "\n## communication topology\n\n"
            << "intra-node: " << Cl.Intra.Latency * 1e6 << " us + "
            << 1.0 / Cl.Intra.BytePeriod / 1e9 << " GB/s\n"
            << "inter-node: " << Cl.Inter.Latency * 1e6 << " us + "
            << 1.0 / Cl.Inter.BytePeriod / 1e9 << " GB/s\n";

  // What the three model kinds make of noisy measurements of device 0.
  std::cout << "\n## model predictions for device 0 after 12 noisy "
               "benchmark points\n\n";
  SimDevice Device = Cl.makeDevice(0);
  SimDeviceBackend Backend(Device);
  Precision Prec;
  Prec.MinReps = 3;
  Prec.MaxReps = 8;
  Prec.TargetRelativeError = 0.03;

  auto Cpm = makeModel("cpm");
  auto Piecewise = makeModel("piecewise");
  auto Akima = makeModel("akima");
  for (int I = 1; I <= 12; ++I) {
    Point P = runBenchmark(Backend, 4000.0 * I / 12.0, Prec);
    Cpm->update(P);
    Piecewise->update(P);
    Akima->update(P);
  }

  Table Pred({"size", "true_speed", "cpm", "piecewise", "akima"});
  for (double D : {200.0, 800.0, 1600.0, 2400.0, 3200.0, 4000.0}) {
    Pred.addRow({Table::num(D, 0),
                 Table::num(Cl.Devices[0].speed(D), 1),
                 Table::num(Cpm->speedAt(D), 1),
                 Table::num(Piecewise->speedAt(D), 1),
                 Table::num(Akima->speedAt(D), 1)});
  }
  Pred.print(std::cout);

  std::cout << "\nthe constant model averages across the cliff; the "
               "functional models track it.\n";
  return 0;
}
