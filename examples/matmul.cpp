//===-- examples/matmul.cpp - heterogeneous parallel matmul ---------------===//
//
// The paper's first use case as a runnable program: multiply two matrices
// on a simulated heterogeneous cluster, with the data partitioned in
// proportion to functional performance models and arranged as 2D
// rectangles by the column-based algorithm of Beaumont et al.
//
// The pipeline: benchmark (simulated, synchronised) -> piecewise FPMs ->
// geometric partitioning -> column-based 2D layout -> SPMD execution with
// real block arithmetic and virtual-time costing -> verification.
//
//===----------------------------------------------------------------------===//

#include "apps/MatMul.h"
#include "core/Metrics.h"
#include "engine/Session.h"
#include "mpp/Runtime.h"
#include "support/Options.h"
#include "support/Table.h"

#include <iostream>
#include <memory>

using namespace fupermod;

int main(int Argc, char **Argv) {
  Options Opts(Argc, Argv);
  // --threads T runs each rank's per-step GEMM on T threads (the charged
  // compute time scales by the modelled thread speedup); --overlap
  // prefetches the next step's pivots while the current GEMM runs.
  std::int64_t Threads = Opts.getInt("threads", 1);
  bool Overlap = Opts.has("overlap");
  if (Threads < 1) {
    std::cerr << "usage: " << Argv[0] << " [--threads T] [--overlap]\n";
    return 2;
  }

  std::cout << "Heterogeneous parallel matrix multiplication\n"
            << "============================================\n\n";

  Cluster Cl = makeHclLikeCluster(false);
  Cl.NoiseSigma = 0.01;
  const int N = 16; // 16x16 blocks.
  const int B = 8;
  const std::int64_t D = static_cast<std::int64_t>(N) * N;

  std::cout << "platform (" << Cl.size() << " devices):\n";
  for (int R = 0; R < Cl.size(); ++R)
    std::cout << "  rank " << R << ": " << Cl.Devices[R].name()
              << " (node " << Cl.NodeOfRank[R] << ")\n";

  // Build piecewise FPMs by synchronised benchmarking on the cluster —
  // the engine session owns the models and the whole pipeline.
  std::cout << "\nbuilding functional performance models...\n";
  engine::SessionConfig Cfg;
  Cfg.Platform = Cl;
  Cfg.ModelKind = "piecewise";
  Cfg.Algorithm = "geometric";
  Result<std::unique_ptr<engine::Session>> SessionR =
      engine::Session::create(std::move(Cfg));
  if (!SessionR) {
    std::cerr << SessionR.error() << "\n";
    return 1;
  }
  engine::Session &Engine = *SessionR.value();
  engine::SyncMeasurePlan Plan;
  Plan.Prec.MinReps = 3;
  Plan.Prec.MaxReps = 6;
  Plan.Prec.TargetRelativeError = 0.05;
  for (int I = 1; I <= 10; ++I)
    Plan.Sizes.push_back(1.5 * static_cast<double>(D) * I / 10.0);
  if (Status S = Engine.measureSynchronized(Plan); !S) {
    std::cerr << S.error() << "\n";
    return 1;
  }

  // Partition the C-matrix area and lay the rectangles out.
  Result<Dist> OutR = Engine.partition(D);
  if (!OutR) {
    std::cout << "partitioning failed\n";
    return 1;
  }
  std::vector<double> Areas;
  for (const Part &P : OutR.value().Parts)
    Areas.push_back(static_cast<double>(P.Units));
  auto Rects = scaleToGrid(partitionColumnBased(Areas), N);

  std::cout << "\n2D layout (block coordinates):\n\n";
  Table L({"rank", "x", "y", "w", "h", "blocks", "share"});
  for (const GridRect &R : Rects)
    L.addRow({Table::num(static_cast<long long>(R.Owner)),
              Table::num(static_cast<long long>(R.X)),
              Table::num(static_cast<long long>(R.Y)),
              Table::num(static_cast<long long>(R.W)),
              Table::num(static_cast<long long>(R.H)),
              Table::num(R.area()),
              Table::num(static_cast<double>(R.area()) /
                             static_cast<double>(D),
                         3)});
  L.print(std::cout);

  // Run and verify.
  MatMulOptions O;
  O.NBlocks = N;
  O.BlockSize = B;
  O.Verify = true;
  O.Overlap = Overlap;
  O.Threads = static_cast<unsigned>(Threads);
  std::cout << "\nrunning the parallel multiplication";
  if (Overlap)
    std::cout << " (overlapped pivots)";
  if (Threads > 1)
    std::cout << " (" << Threads << " GEMM threads)";
  std::cout << "...\n";
  MatMulReport R = runParallelMatMul(Cl, Rects, O);

  std::cout << "\nmakespan (virtual): " << R.Makespan << " s\n"
            << "blocks communicated: " << R.BlocksCommunicated << "\n"
            << "max |parallel - serial| error: " << R.MaxError << "\n"
            << "compute-time imbalance: " << imbalance(R.ComputeTimes)
            << "\n";
  return R.MaxError < 1e-9 ? 0 : 1;
}
