//===-- examples/matmul.cpp - heterogeneous parallel matmul ---------------===//
//
// The paper's first use case as a runnable program: multiply two matrices
// on a simulated heterogeneous cluster, with the data partitioned in
// proportion to functional performance models and arranged as 2D
// rectangles by the column-based algorithm of Beaumont et al.
//
// The pipeline: benchmark (simulated, synchronised) -> piecewise FPMs ->
// geometric partitioning -> column-based 2D layout -> SPMD execution with
// real block arithmetic and virtual-time costing -> verification.
//
//===----------------------------------------------------------------------===//

#include "apps/MatMul.h"
#include "core/Dynamic.h"
#include "core/Metrics.h"
#include "core/Partitioners.h"
#include "mpp/Runtime.h"
#include "support/Options.h"
#include "support/Table.h"

#include <iostream>
#include <memory>

using namespace fupermod;

int main(int Argc, char **Argv) {
  Options Opts(Argc, Argv);
  // --threads T runs each rank's per-step GEMM on T threads (the charged
  // compute time scales by the modelled thread speedup); --overlap
  // prefetches the next step's pivots while the current GEMM runs.
  std::int64_t Threads = Opts.getInt("threads", 1);
  bool Overlap = Opts.has("overlap");
  if (Threads < 1) {
    std::cerr << "usage: " << Argv[0] << " [--threads T] [--overlap]\n";
    return 2;
  }

  std::cout << "Heterogeneous parallel matrix multiplication\n"
            << "============================================\n\n";

  Cluster Cl = makeHclLikeCluster(false);
  Cl.NoiseSigma = 0.01;
  const int N = 16; // 16x16 blocks.
  const int B = 8;
  const std::int64_t D = static_cast<std::int64_t>(N) * N;

  std::cout << "platform (" << Cl.size() << " devices):\n";
  for (int R = 0; R < Cl.size(); ++R)
    std::cout << "  rank " << R << ": " << Cl.Devices[R].name()
              << " (node " << Cl.NodeOfRank[R] << ")\n";

  // Build piecewise FPMs by synchronised benchmarking on the cluster.
  std::cout << "\nbuilding functional performance models...\n";
  std::vector<std::unique_ptr<Model>> Models(
      static_cast<std::size_t>(Cl.size()));
  for (int R = 0; R < Cl.size(); ++R)
    Models[static_cast<std::size_t>(R)] = makeModel("piecewise");
  runSpmd(Cl.size(),
          [&](Comm &C) {
            SimDevice Dev = Cl.makeDevice(C.rank());
            SimDeviceBackend Backend(Dev, &C);
            Precision Prec;
            Prec.MinReps = 3;
            Prec.MaxReps = 6;
            Prec.TargetRelativeError = 0.05;
            for (int I = 1; I <= 10; ++I) {
              Point P = runBenchmark(
                  Backend, 1.5 * static_cast<double>(D) * I / 10.0, Prec,
                  &C);
              std::vector<Point> All =
                  C.allgatherv(std::span<const Point>(&P, 1));
              if (C.rank() == 0)
                for (int Q = 0; Q < C.size(); ++Q)
                  Models[static_cast<std::size_t>(Q)]->update(
                      All[static_cast<std::size_t>(Q)]);
            }
          },
          Cl.makeCostModel());

  // Partition the C-matrix area and lay the rectangles out.
  std::vector<Model *> Ptrs;
  for (auto &M : Models)
    Ptrs.push_back(M.get());
  Dist Out;
  if (!partitionGeometric(D, Ptrs, Out)) {
    std::cout << "partitioning failed\n";
    return 1;
  }
  std::vector<double> Areas;
  for (const Part &P : Out.Parts)
    Areas.push_back(static_cast<double>(P.Units));
  auto Rects = scaleToGrid(partitionColumnBased(Areas), N);

  std::cout << "\n2D layout (block coordinates):\n\n";
  Table L({"rank", "x", "y", "w", "h", "blocks", "share"});
  for (const GridRect &R : Rects)
    L.addRow({Table::num(static_cast<long long>(R.Owner)),
              Table::num(static_cast<long long>(R.X)),
              Table::num(static_cast<long long>(R.Y)),
              Table::num(static_cast<long long>(R.W)),
              Table::num(static_cast<long long>(R.H)),
              Table::num(R.area()),
              Table::num(static_cast<double>(R.area()) /
                             static_cast<double>(D),
                         3)});
  L.print(std::cout);

  // Run and verify.
  MatMulOptions O;
  O.NBlocks = N;
  O.BlockSize = B;
  O.Verify = true;
  O.Overlap = Overlap;
  O.Threads = static_cast<unsigned>(Threads);
  std::cout << "\nrunning the parallel multiplication";
  if (Overlap)
    std::cout << " (overlapped pivots)";
  if (Threads > 1)
    std::cout << " (" << Threads << " GEMM threads)";
  std::cout << "...\n";
  MatMulReport R = runParallelMatMul(Cl, Rects, O);

  std::cout << "\nmakespan (virtual): " << R.Makespan << " s\n"
            << "blocks communicated: " << R.BlocksCommunicated << "\n"
            << "max |parallel - serial| error: " << R.MaxError << "\n"
            << "compute-time imbalance: " << imbalance(R.ComputeTimes)
            << "\n";
  return R.MaxError < 1e-9 ? 0 : 1;
}
