//===-- examples/jacobi.cpp - self-adapting Jacobi solver -----------------===//
//
// The paper's second use case (Section 4.4): a data-parallel Jacobi
// solver that balances itself at runtime. No a priori model construction:
// partial functional performance models are estimated from the timed
// application iterations themselves, and rows migrate between processes
// until every device finishes its sweep at the same moment.
//
//===----------------------------------------------------------------------===//

#include "apps/Jacobi.h"
#include "core/Metrics.h"
#include "support/Table.h"

#include <iostream>

using namespace fupermod;

int main() {
  std::cout << "Self-adapting Jacobi solver\n===========================\n\n";

  Cluster Cl = makeHclLikeCluster(false);
  Cl.NoiseSigma = 0.01;

  JacobiOptions O;
  O.N = 300;
  O.MaxIterations = 30;
  O.Tolerance = 1e-10;
  O.Balance = true;
  O.Algorithm = "geometric";
  O.ModelKind = "piecewise";

  std::cout << "solving a " << O.N << "x" << O.N
            << " diagonally dominant system on " << Cl.size()
            << " heterogeneous devices\n\n";

  JacobiReport R = runJacobi(Cl, O);

  Table T({"iter", "rows(slowest_dev)", "max_t(s)", "min_t(s)",
           "imbalance", "error"});
  for (std::size_t It = 0; It < R.Iterations.size(); ++It) {
    const JacobiIteration &Iter = R.Iterations[It];
    double MaxT = 0.0, MinT = 1e300;
    for (double Ct : Iter.ComputeTimes) {
      MaxT = std::max(MaxT, Ct);
      MinT = std::min(MinT, Ct);
    }
    T.addRow({Table::num(static_cast<long long>(It + 1)),
              Table::num(Iter.Rows.back()), Table::num(MaxT, 4),
              Table::num(MinT, 4),
              Table::num(imbalance(Iter.ComputeTimes), 3),
              Table::num(Iter.Error, 8)});
  }
  T.print(std::cout);

  std::cout << "\nconverged: " << (R.Converged ? "yes" : "no")
            << "; residual |Ax-b|_inf = " << R.Residual
            << "; makespan = " << R.Makespan << " s\n";

  JacobiOptions Off = O;
  Off.Balance = false;
  JacobiReport Plain = runJacobi(Cl, Off);
  std::cout << "for comparison, the same run without balancing takes "
            << Plain.Makespan << " s\n";
  return R.Converged && R.Residual < 1e-6 ? 0 : 1;
}
