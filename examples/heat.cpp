//===-- examples/heat.cpp - self-balancing heat simulation ----------------===//
//
// The application class the paper's introduction motivates (computer
// simulations / CFD): an explicit 2D heat stencil whose band distribution
// rebalances itself at runtime, with halo exchange between neighbouring
// devices. Demonstrates the dynamic load balancer on a point-to-point
// communication pattern, plus the rebalance threshold (paper ref [6]).
//
//===----------------------------------------------------------------------===//

#include "apps/Stencil.h"
#include "core/Metrics.h"
#include "support/Table.h"

#include <iostream>

using namespace fupermod;

int main() {
  std::cout << "Self-balancing 2D heat simulation\n"
            << "=================================\n\n";

  Cluster Cl = makeHclLikeCluster(false);
  Cl.NoiseSigma = 0.01;

  StencilOptions O;
  O.Rows = 122; // 120 interior rows over 6 devices.
  O.Cols = 96;
  O.Iterations = 25;
  O.Balance = true;
  O.RebalanceThreshold = 0.10; // Rebalance only above 10% imbalance.

  std::cout << "grid " << O.Rows << "x" << O.Cols << " on " << Cl.size()
            << " heterogeneous devices; rebalance threshold "
            << O.RebalanceThreshold << "\n\n";

  StencilReport R = runStencil(Cl, O);

  Table T({"iter", "rows(slowest)", "rows(fastest)", "imbalance"});
  for (std::size_t It = 0; It < R.Iterations.size(); It += 4) {
    const StencilIteration &Iter = R.Iterations[It];
    T.addRow({Table::num(static_cast<long long>(It + 1)),
              Table::num(Iter.Rows.back()), Table::num(Iter.Rows.front()),
              Table::num(imbalance(Iter.ComputeTimes), 3)});
  }
  T.print(std::cout);

  std::cout << "\nmakespan: " << R.Makespan << " s; halo rows sent: "
            << R.HaloRowsSent << "; balancer ran in " << R.Rebalances
            << "/" << O.Iterations << " iterations\n"
            << "verification |parallel - serial|_max = " << R.MaxError
            << "\n";

  StencilOptions Off = O;
  Off.Balance = false;
  StencilReport Plain = runStencil(Cl, Off);
  std::cout << "static-even makespan for comparison: " << Plain.Makespan
            << " s\n";
  return R.MaxError < 1e-9 ? 0 : 1;
}
