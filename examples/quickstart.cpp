//===-- examples/quickstart.cpp - FuPerMod in five minutes ----------------===//
//
// The paper's workflow on a real kernel, end to end:
//
//   1. define a computation kernel (here: the GEMM block-update kernel of
//      heterogeneous matrix multiplication, paper Fig. 1(b)),
//   2. benchmark it at several problem sizes with statistically reliable
//      repetition (wall clock, on this machine),
//   3. build functional performance models from the measured points,
//   4. ask a data partitioning algorithm for the optimal distribution of
//      a problem over "processors" described by those models.
//
// To keep the example self-contained on one machine, step 4 partitions
// between this machine's measured model and two synthetically scaled
// copies (a 2x faster and a 3x slower "device") — exactly what you would
// get from benchmarking on three heterogeneous hosts.
//
//===----------------------------------------------------------------------===//

#include "core/Benchmark.h"
#include "core/GemmKernel.h"
#include "core/Partitioners.h"
#include "support/Table.h"

#include <iostream>
#include <memory>

using namespace fupermod;

int main() {
  std::cout << "FuPerMod quickstart\n===================\n\n";

  // 1. The application kernel: one b x b block update per computation
  //    unit. complexity() converts units to flops.
  GemmKernel Kernel(/*BlockSize=*/16, /*UseBlockedGemm=*/true);
  NativeKernelBackend Backend(Kernel);

  // 2. Benchmark at a handful of sizes. Precision controls repetitions:
  //    repeat until the 95% confidence interval is within 5% of the mean
  //    (capped so the quickstart stays quick).
  Precision Prec;
  Prec.MinReps = 3;
  Prec.MaxReps = 8;
  Prec.TargetRelativeError = 0.05;
  Prec.TimeLimit = 0.5;

  std::cout << "benchmarking the GEMM kernel on this machine...\n\n";
  Table Bench({"units", "time(s)", "reps", "ci(s)", "gflops"});
  AkimaModel Local;
  for (double D : {32.0, 64.0, 128.0, 256.0, 512.0}) {
    Point P = runBenchmark(Backend, D, Prec);
    Local.update(P);
    Bench.addRow({Table::num(P.Units, 0), Table::num(P.Time, 5),
                  Table::num(static_cast<long long>(P.Reps)),
                  Table::num(P.ConfidenceInterval, 5),
                  Table::num(Kernel.complexity(P.Units) / P.Time / 1e9,
                             3)});
  }
  Bench.print(std::cout);

  // 3. Two more "devices": scaled copies of the measured model, as if
  //    benchmarked on other hosts.
  auto Scaled = [&](double Factor) {
    auto M = std::make_unique<AkimaModel>();
    for (const Point &P : Local.points()) {
      Point Q = P;
      Q.Time = P.Time / Factor;
      M->update(Q);
    }
    return M;
  };
  std::unique_ptr<Model> Fast = Scaled(2.0);
  std::unique_ptr<Model> Slow = Scaled(1.0 / 3.0);
  std::vector<Model *> Models = {&Local, Fast.get(), Slow.get()};

  // 4. Partition 1000 units across the three devices with the numerical
  //    (Akima FPM) algorithm.
  const std::int64_t D = 1000;
  Dist Out;
  if (!partitionNumerical(D, Models, Out)) {
    std::cout << "partitioning failed\n";
    return 1;
  }

  std::cout << "\noptimal distribution of " << D
            << " units (numerical algorithm over Akima FPMs):\n\n";
  Table Result({"device", "units", "predicted_time(s)"});
  const char *Names[] = {"this machine", "2x faster copy", "3x slower copy"};
  for (std::size_t I = 0; I < Out.Parts.size(); ++I)
    Result.addRow({Names[I], Table::num(Out.Parts[I].Units),
                   Table::num(Out.Parts[I].PredictedTime, 5)});
  Result.print(std::cout);

  std::cout << "\nall devices are predicted to finish at the same moment — "
               "that is the\noptimality condition the algorithms solve "
               "for.\n";
  return 0;
}
