//===-- bench/fig2_speed_functions.cpp - E1/E2: paper Fig. 2 --------------===//
//
// Reproduces Fig. 2 of the paper: the speed function of the GEMM-based
// matrix-multiplication kernel, approximated by (a) the piecewise-linear
// FPM with coarsening and (b) the Akima-spline FPM.
//
// Two data sources are used:
//  1. the simulated "Netlib BLAS" device profile, whose shape matches the
//     published figure (rise, ~5 GFLOPS plateau, decline past ~3000
//     units), with measurement noise, and
//  2. a *native* measurement of this machine's real naive-GEMM kernel
//     (small sizes, to keep the run short), demonstrating the same
//     machinery on wall-clock data.
//
// Output: one table per source with columns
//   size  true/measured speed  piecewise-FPM speed  akima-FPM speed
//
//===----------------------------------------------------------------------===//

#include "core/Benchmark.h"
#include "core/GemmKernel.h"
#include "core/Model.h"
#include "sim/SimDevice.h"
#include "support/Table.h"

#include <iostream>
#include <memory>

using namespace fupermod;

namespace {

void runSimulatedNetlib() {
  std::cout << "## Fig. 2 — simulated Netlib BLAS GEMM kernel\n"
            << "# speed in GFLOPS (unit complexity 1e6 flops), sizes in\n"
            << "# computation units; models built from 20 noisy points\n\n";

  const double UnitFlops = 1e6;
  SimDevice Dev(makeNetlibBlasProfile(UnitFlops), /*NoiseSigma=*/0.03,
                /*Seed=*/2013);
  SimDeviceBackend Backend(Dev);

  PiecewiseModel Piecewise;
  AkimaModel Akima;
  Precision Prec;
  Prec.MinReps = 3;
  Prec.MaxReps = 10;
  Prec.TargetRelativeError = 0.02;

  const int NumPoints = 20;
  const double MaxSize = 5000.0;
  for (int I = 1; I <= NumPoints; ++I) {
    double D = MaxSize * I / NumPoints;
    Point P = runBenchmark(Backend, D, Prec);
    Piecewise.update(P);
    Akima.update(P);
  }

  // The figure grid is ascending, so evaluate both models through the
  // batched path (one forward segment walk instead of 40 binary searches).
  std::vector<double> Sizes;
  for (double D = 125.0; D <= 5000.0; D += 125.0)
    Sizes.push_back(D);
  std::vector<double> PWTimes(Sizes.size()), AkTimes(Sizes.size());
  Piecewise.timesAt(Sizes, PWTimes);
  Akima.timesAt(Sizes, AkTimes);

  Table T({"size", "true_gflops", "piecewise_gflops", "akima_gflops"});
  for (std::size_t I = 0; I < Sizes.size(); ++I) {
    double D = Sizes[I];
    double True = Dev.profile().speed(D) * UnitFlops / 1e9;
    double PW = D / PWTimes[I] * UnitFlops / 1e9;
    double Ak = D / AkTimes[I] * UnitFlops / 1e9;
    T.addRow({Table::num(D, 0), Table::num(True, 3), Table::num(PW, 3),
              Table::num(Ak, 3)});
  }
  T.print(std::cout);
  std::cout << '\n';
}

void runNativeGemm() {
  std::cout << "## Fig. 2 (native) — this machine's naive GEMM kernel\n"
            << "# wall-clock measurement of blas/gemmNaive via the same\n"
            << "# kernel/benchmark machinery; speeds in GFLOPS\n\n";

  GemmKernel Kernel(/*BlockSize=*/16, /*UseBlockedGemm=*/false);
  NativeKernelBackend Backend(Kernel);

  PiecewiseModel Piecewise;
  AkimaModel Akima;
  std::vector<Point> Measured;
  Precision Prec;
  Prec.MinReps = 2;
  Prec.MaxReps = 4;
  Prec.TargetRelativeError = 0.10;
  Prec.TimeLimit = 1.0;

  for (double D : {16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0}) {
    Point P = runBenchmark(Backend, D, Prec);
    Measured.push_back(P);
    Piecewise.update(P);
    Akima.update(P);
  }

  Table T({"size", "measured_gflops", "piecewise_gflops", "akima_gflops",
           "reps"});
  for (const Point &P : Measured) {
    double Flops = Kernel.complexity(P.Units);
    double Measured = Flops / P.Time / 1e9;
    double PW =
        Flops / Piecewise.timeAt(P.Units) / 1e9;
    double Ak = Flops / Akima.timeAt(P.Units) / 1e9;
    T.addRow({Table::num(P.Units, 0), Table::num(Measured, 3),
              Table::num(PW, 3), Table::num(Ak, 3),
              Table::num(static_cast<long long>(P.Reps))});
  }
  T.print(std::cout);
  std::cout << '\n';
}

} // namespace

int main() {
  std::cout << "=== E1/E2 (paper Fig. 2): FPM approximations of the GEMM "
               "kernel speed function ===\n\n";
  runSimulatedNetlib();
  runNativeGemm();
  std::cout << "Expected shape (paper): the Akima FPM tracks the measured "
               "speed closely;\nthe piecewise FPM coarsens it onto a "
               "monotone-time envelope.\n";
  return 0;
}
