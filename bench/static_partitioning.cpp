//===-- bench/static_partitioning.cpp - E5: CPM vs FPM quality ------------===//
//
// Reproduces the paper's Section 4.3 claims about the three static
// partitioning algorithms: CPM-based proportional division is cheap and
// adequate while every allocation sits in a flat region of its device's
// speed function, but breaks down once allocations straddle memory-
// hierarchy cliffs; the geometric (piecewise FPM) and numerical (Akima
// FPM) algorithms stay near-optimal everywhere and agree with each other.
//
// Output: for a sweep of total problem sizes D on the heterogeneous
// cluster, the true makespan and imbalance achieved by each algorithm,
// normalised by the true optimal makespan.
//
//===----------------------------------------------------------------------===//

#include "core/Metrics.h"
#include "core/Partitioners.h"
#include "sim/Cluster.h"
#include "support/Table.h"

#include <iostream>
#include <cmath>
#include <memory>

using namespace fupermod;

namespace {

std::vector<std::unique_ptr<Model>>
buildModels(const char *Kind, std::span<const DeviceProfile> Profiles,
            double MaxSize, int NumPoints) {
  std::vector<std::unique_ptr<Model>> Models;
  for (const DeviceProfile &P : Profiles) {
    auto M = makeModel(Kind);
    // Log-spaced sizes: real model construction samples small sizes too,
    // otherwise small allocations live in the extrapolated region.
    const double MinSize = 50.0;
    for (int I = 0; I < NumPoints; ++I) {
      double D = MinSize * std::pow(MaxSize / MinSize,
                                    static_cast<double>(I) /
                                        (NumPoints - 1));
      Point Pt;
      Pt.Units = D;
      Pt.Time = P.time(D);
      Pt.Reps = 1;
      M->update(Pt);
    }
    Models.push_back(std::move(M));
  }
  return Models;
}

} // namespace

int main() {
  std::cout << "=== E5 (Section 4.3): static partitioning quality, CPM vs "
               "geometric vs numerical ===\n\n";

  Cluster Cl = makeHclLikeCluster(true);
  std::cout << "platform: " << Cl.size()
            << " devices (fast/contended/slow CPUs + GPU with memory "
               "limit)\n"
            << "CPM speeds probed with one small benchmark (200 units), "
               "the traditional approach\n\n";

  const double MaxModelSize = 60000.0;

  // CPM the traditional way: a single small serial benchmark per device.
  std::vector<std::unique_ptr<Model>> Cpm;
  for (const DeviceProfile &P : Cl.Devices) {
    auto M = makeModel("cpm");
    Point Pt;
    Pt.Units = 200.0;
    Pt.Time = P.time(200.0);
    Pt.Reps = 1;
    M->update(Pt);
    Cpm.push_back(std::move(M));
  }
  auto Piecewise = buildModels("piecewise", Cl.Devices, MaxModelSize, 48);
  auto Akima = buildModels("akima", Cl.Devices, MaxModelSize, 48);
  auto Linear = buildModels("linear", Cl.Devices, MaxModelSize, 48);

  auto Ptrs = [](std::vector<std::unique_ptr<Model>> &Ms) {
    std::vector<Model *> Out;
    for (auto &M : Ms)
      Out.push_back(M.get());
    return Out;
  };
  auto CpmPtrs = Ptrs(Cpm);
  auto GeoPtrs = Ptrs(Piecewise);
  auto NumPtrs = Ptrs(Akima);
  auto LinPtrs = Ptrs(Linear);

  Table T({"D", "opt_makespan", "cpm/opt", "linear/opt", "geometric/opt",
           "numerical/opt", "cpm_imb", "geo_imb", "num_imb"});

  for (std::int64_t D : {1000, 2000, 4000, 8000, 12000, 16000, 24000,
                         32000, 48000}) {
    double Opt = optimalMakespan(D, Cl.Devices);
    Dist CpmDist, LinDist, GeoDist, NumDist;
    bool OkC = partitionConstant(D, CpmPtrs, CpmDist);
    bool OkL = partitionGeometric(D, LinPtrs, LinDist);
    bool OkG = partitionGeometric(D, GeoPtrs, GeoDist);
    bool OkN = partitionNumerical(D, NumPtrs, NumDist);
    if (!OkC || !OkL || !OkG || !OkN) {
      std::cout << "partitioning failed at D = " << D << "\n";
      continue;
    }
    auto TC = trueTimes(CpmDist, Cl.Devices);
    auto TL = trueTimes(LinDist, Cl.Devices);
    auto TG = trueTimes(GeoDist, Cl.Devices);
    auto TN = trueTimes(NumDist, Cl.Devices);
    T.addRow({Table::num(static_cast<long long>(D)), Table::num(Opt, 3),
              Table::num(makespan(TC) / Opt, 3),
              Table::num(makespan(TL) / Opt, 3),
              Table::num(makespan(TG) / Opt, 3),
              Table::num(makespan(TN) / Opt, 3),
              Table::num(imbalance(TC), 3), Table::num(imbalance(TG), 3),
              Table::num(imbalance(TN), 3)});
  }
  T.print(std::cout);

  std::cout
      << "\nExpected shape (paper): CPM is competitive at small D (flat "
         "speed regions)\nand degrades sharply once allocations cross the "
         "devices' cliffs; both FPM\nalgorithms stay within a few percent "
         "of optimal across the whole sweep and\nagree with each other.\n";
  return 0;
}
