//===-- bench/matmul_overlap.cpp - zero-copy + overlap matmul -------------===//
//
// Records the perf trajectory of the SPMD matmul communication path:
// virtual makespan, physical copy volume and per-rank stall time of the
// heterogeneous parallel matmul under four configurations —
//
//   baseline        copy-mode sends, serial schedule, 1 GEMM thread
//   zerocopy        shared-payload pivot fan-out, serial schedule
//   overlap         zero-copy + double-buffered pivot prefetch (irecv)
//   overlap+threads overlap + 4-way row-banded gemmParallel
//
// — on the HCL-like examples cluster behind a 100 Mbit-class inter-node
// fabric, with areas balanced to the devices' true speeds. All four
// configurations must produce a bit-identical result matrix (FNV hash of
// every C rectangle). A companion experiment broadcasts one payload to 8
// ranks through the legacy copying path and the shared-payload path to
// show physical copies dropping from O(P * size) to O(size).
//
// Output: tables on stdout and BENCH_matmul_overlap.json in the working
// directory. With --smoke, runs a tiny configuration and exits non-zero
// on any correctness failure — the tier-1 tripwire. The full run
// additionally enforces the >= 1.5x overlap+threads speedup floor.
//
//===----------------------------------------------------------------------===//

#include "apps/MatMul.h"
#include "mpp/Runtime.h"
#include "support/Options.h"
#include "support/Table.h"

#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

using namespace fupermod;

namespace {

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ModeResult {
  std::string Name;
  MatMulReport Report;
  double WallSeconds = 0.0;
};

/// One speed-balanced column partition for the platform: areas
/// proportional to each device's true speed at its expected share.
std::vector<GridRect> balancedPartition(const Cluster &Cl, int NBlocks) {
  int P = Cl.size();
  double Share = static_cast<double>(NBlocks) * NBlocks /
                 static_cast<double>(P);
  std::vector<double> Areas;
  for (int R = 0; R < P; ++R) {
    double T = Cl.Devices[static_cast<std::size_t>(R)].time(Share);
    Areas.push_back(T > 0.0 ? Share / T : 1.0);
  }
  return scaleToGrid(partitionColumnBased(Areas), NBlocks);
}

/// Broadcast copy-volume demo: the same 1 MiB payload through the
/// copying broadcast and the shared-payload broadcast.
struct BcastDemo {
  CommStatsSnapshot Copying;
  CommStatsSnapshot Shared;
  std::size_t Bytes = 0;
  int Ranks = 0;
};

BcastDemo runBcastDemo(bool Smoke) {
  BcastDemo D;
  D.Ranks = 8;
  D.Bytes = Smoke ? (64u << 10) : (1u << 20);
  auto Cost = std::make_shared<UniformCostModel>(1e-5, 1e9);

  SpmdResult Copying = runSpmd(
      D.Ranks,
      [&](Comm &C) {
        std::vector<std::byte> Data;
        if (C.rank() == 0)
          Data.resize(D.Bytes, std::byte{42});
        C.bcastBytes(Data, 0);
      },
      Cost);
  D.Copying = Copying.Comm;

  SpmdResult Shared = runSpmd(
      D.Ranks,
      [&](Comm &C) {
        Payload Data;
        if (C.rank() == 0)
          Data = Payload::adoptBytes(
              std::vector<std::byte>(D.Bytes, std::byte{42}));
        C.bcastPayload(Data, 0);
      },
      Cost);
  D.Shared = Shared.Comm;
  return D;
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts(Argc, Argv);
  const bool Smoke = Opts.has("smoke");

  // The HCL-like examples platform (two CPU nodes + a GPU node) behind a
  // 100 Mbit-class inter-node fabric — the regime the paper's dedicated
  // clusters ran in, where pivot communication is worth hiding.
  Cluster Cl = makeHclLikeCluster(/*WithGpu=*/true);
  Cl.Inter = LinkCost{/*Latency=*/2e-4, /*BytePeriod=*/8e-8};

  MatMulOptions Base;
  Base.NBlocks = Smoke ? 6 : 8;
  Base.BlockSize = Smoke ? 16 : 96;
  Base.Verify = true; // Baseline only; other modes are gated by the hash.

  std::vector<GridRect> Rects = balancedPartition(Cl, Base.NBlocks);

  std::cout << "=== matmul overlap: zero-copy collectives & comm/compute "
               "pipeline ===\n\n"
            << "platform: " << Cl.size()
            << " devices (hcl-like + gpu), inter-node "
            << 1.0 / (Cl.Inter.BytePeriod * 1e6) << " MB/s, grid "
            << Base.NBlocks << "x" << Base.NBlocks << " blocks of "
            << Base.BlockSize << "x" << Base.BlockSize << " doubles\n\n";

  struct ModeSpec {
    const char *Name;
    bool ZeroCopy;
    bool Overlap;
    unsigned Threads;
  };
  const ModeSpec Modes[] = {
      {"baseline", false, false, 1},
      {"zerocopy", true, false, 1},
      {"overlap", true, true, 1},
      {"overlap+threads", true, true, 4},
  };

  std::vector<ModeResult> Results;
  for (const ModeSpec &M : Modes) {
    MatMulOptions O = Base;
    O.ZeroCopy = M.ZeroCopy;
    O.Overlap = M.Overlap;
    O.Threads = M.Threads;
    O.Verify = Base.Verify && Results.empty();
    double T0 = now();
    ModeResult R;
    R.Name = M.Name;
    R.Report = runParallelMatMul(Cl, Rects, O);
    R.WallSeconds = now() - T0;
    Results.push_back(std::move(R));
  }

  Table T({"mode", "makespan(ms)", "speedup", "max_idle(ms)", "messages",
           "bytes_logical(MiB)", "bytes_copied(MiB)", "wall(s)"});
  double BaseMakespan = Results.front().Report.Makespan;
  for (const ModeResult &R : Results) {
    const MatMulReport &Rep = R.Report;
    T.addRow({R.Name, Table::num(Rep.Makespan * 1e3, 2),
              Table::num(BaseMakespan / Rep.Makespan, 2),
              Table::num(Rep.MaxIdleTime * 1e3, 2),
              Table::num(static_cast<long long>(Rep.Comm.Messages)),
              Table::num(static_cast<double>(Rep.Comm.BytesLogical) /
                             (1 << 20),
                         2),
              Table::num(static_cast<double>(Rep.Comm.BytesCopied) /
                             (1 << 20),
                         2),
              Table::num(R.WallSeconds, 3)});
  }
  T.print(std::cout);

  bool HashesEqual = true;
  for (const ModeResult &R : Results)
    HashesEqual =
        HashesEqual && R.Report.ResultHash == Results.front().Report.ResultHash;
  double Speedup = BaseMakespan / Results.back().Report.Makespan;
  double MaxError = Results.front().Report.MaxError;

  std::cout << "\nresult hashes "
            << (HashesEqual ? "identical across all modes"
                            : "DIVERGED across modes")
            << "; baseline max |parallel - serial| = " << MaxError
            << "\noverlap+threads speedup over baseline: " << Speedup
            << "x\n";

  BcastDemo Demo = runBcastDemo(Smoke);
  std::cout << "\nbroadcast of " << Demo.Bytes / 1024 << " KiB to "
            << Demo.Ranks << " ranks: copying path "
            << Demo.Copying.BytesCopied / 1024
            << " KiB physically copied, shared-payload path "
            << Demo.Shared.BytesCopied / 1024 << " KiB (logical volume "
            << Demo.Shared.BytesLogical / 1024 << " KiB each)\n";

  std::FILE *J = std::fopen("BENCH_matmul_overlap.json", "w");
  if (J) {
    std::fprintf(J,
                 "{\n"
                 "  \"bench\": \"matmul_overlap\",\n"
                 "  \"mode\": \"%s\",\n"
                 "  \"devices\": %d,\n"
                 "  \"grid_blocks\": %d,\n"
                 "  \"block_size\": %d,\n"
                 "  \"inter_node_bytes_per_second\": %.0f,\n"
                 "  \"modes\": [\n",
                 Smoke ? "smoke" : "full", Cl.size(), Base.NBlocks,
                 Base.BlockSize, 1.0 / Cl.Inter.BytePeriod);
    for (std::size_t I = 0; I < Results.size(); ++I) {
      const MatMulReport &R = Results[I].Report;
      std::fprintf(
          J,
          "    {\"name\": \"%s\", \"makespan_seconds\": %.9f, "
          "\"speedup_vs_baseline\": %.3f, \"max_idle_seconds\": %.9f, "
          "\"messages\": %llu, \"bytes_logical\": %llu, "
          "\"bytes_copied\": %llu, \"result_hash\": \"%016llx\", "
          "\"wall_seconds\": %.3f}%s\n",
          Results[I].Name.c_str(), R.Makespan,
          BaseMakespan / R.Makespan, R.MaxIdleTime,
          static_cast<unsigned long long>(R.Comm.Messages),
          static_cast<unsigned long long>(R.Comm.BytesLogical),
          static_cast<unsigned long long>(R.Comm.BytesCopied),
          static_cast<unsigned long long>(R.ResultHash),
          Results[I].WallSeconds, I + 1 < Results.size() ? "," : "");
    }
    std::fprintf(
        J,
        "  ],\n"
        "  \"overlap_threads_speedup\": %.3f,\n"
        "  \"result_hashes_identical\": %s,\n"
        "  \"baseline_max_error\": %.3e,\n"
        "  \"bcast_demo\": {\"ranks\": %d, \"payload_bytes\": %zu, "
        "\"copying_bytes_copied\": %llu, \"shared_bytes_copied\": %llu, "
        "\"logical_bytes\": %llu}\n"
        "}\n",
        Speedup, HashesEqual ? "true" : "false", MaxError, Demo.Ranks,
        Demo.Bytes,
        static_cast<unsigned long long>(Demo.Copying.BytesCopied),
        static_cast<unsigned long long>(Demo.Shared.BytesCopied),
        static_cast<unsigned long long>(Demo.Shared.BytesLogical));
    std::fclose(J);
    std::cout << "# wrote BENCH_matmul_overlap.json\n";
  }

  // Tripwires. Correctness gates both modes; the speedup floor gates the
  // full run only (the smoke grid is too small for overlap to win).
  bool Ok = true;
  if (!HashesEqual) {
    std::cout << "FAIL: result matrix differs between modes\n";
    Ok = false;
  }
  if (MaxError > 1e-9) {
    std::cout << "FAIL: baseline verification error " << MaxError << "\n";
    Ok = false;
  }
  if (Demo.Shared.BytesCopied > Demo.Bytes ||
      Demo.Copying.BytesCopied <
          static_cast<unsigned long long>(Demo.Ranks - 1) * Demo.Bytes) {
    std::cout << "FAIL: broadcast copy accounting off (copying "
              << Demo.Copying.BytesCopied << ", shared "
              << Demo.Shared.BytesCopied << ")\n";
    Ok = false;
  }
  if (!Smoke && Speedup < 1.5) {
    std::cout << "FAIL: overlap+threads speedup " << Speedup
              << " < 1.5x floor\n";
    Ok = false;
  }
  return Ok ? 0 : 1;
}
