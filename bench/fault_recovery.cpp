//===-- bench/fault_recovery.cpp - robustness: mid-run GPU slowdown -------===//
//
// Tracked robustness benchmark: the Jacobi balancer's reaction to a
// fault. The HCL-like platform (with GPU) runs balanced Jacobi; after 8
// iterations the GPU is slowed down 4x (thermal throttling / co-tenant),
// injected through the device's FaultPlan. The balancer must notice the
// regime change and reconverge — model-staleness decay is what lets it
// forget the GPU's old speed instead of averaging the two regimes
// forever.
//
// Output: per-iteration compute times, row counts and imbalance, then
// the time-to-reconvergence (iterations and virtual seconds from the
// fault until imbalance drops back under 5%), with a no-decay run as the
// baseline.
//
//===----------------------------------------------------------------------===//

#include "apps/Jacobi.h"
#include "core/Metrics.h"
#include "support/Table.h"

#include <iostream>

using namespace fupermod;

namespace {

constexpr int FaultIteration = 8; // 0-based device call index.
constexpr double SlowFactor = 4.0;
constexpr double ReconvergedBelow = 0.05;

struct Recovery {
  int Iterations = -1; // -1 = never reconverged.
  double VirtualSeconds = 0.0;
};

/// First iteration at or after the fault whose imbalance is back under
/// the threshold; virtual time approximated by summing per-iteration
/// makespans over the recovery window.
Recovery timeToReconvergence(const JacobiReport &R) {
  Recovery Out;
  for (std::size_t It = FaultIteration; It < R.Iterations.size(); ++It) {
    double Max = 0.0;
    for (double T : R.Iterations[It].ComputeTimes)
      Max = std::max(Max, T);
    Out.VirtualSeconds += Max;
    if (imbalance(R.Iterations[It].ComputeTimes) <= ReconvergedBelow) {
      Out.Iterations = static_cast<int>(It) - FaultIteration + 1;
      return Out;
    }
  }
  Out.Iterations = -1;
  return Out;
}

JacobiReport runScenario(double StalenessDecay) {
  Cluster Cl = makeHclLikeCluster(true);
  Cl.NoiseSigma = 0.01;
  FaultEvent Slowdown;
  Slowdown.Kind = FaultKind::Slowdown;
  Slowdown.AfterCalls = FaultIteration; // One device call per iteration.
  Slowdown.Factor = SlowFactor;
  Cl.addFault(Cl.size() - 1, Slowdown); // The GPU rank.

  JacobiOptions O;
  O.N = 2000;
  O.MaxIterations = 30;
  O.Tolerance = 0.0; // Run all iterations; the subject is the balancer.
  O.Balance = true;
  O.Algorithm = "geometric";
  O.ModelKind = "piecewise";
  O.StalenessDecay = StalenessDecay;
  return runJacobi(Cl, O);
}

} // namespace

int main() {
  std::cout << "=== robustness: Jacobi balancer vs a mid-run 4x GPU "
               "slowdown ===\n\n";
  std::cout << "platform: HCL-like, 7 devices incl. GPU; fault: GPU slows "
            << SlowFactor << "x from iteration " << FaultIteration + 1
            << " on\n\n";

  JacobiReport R = runScenario(/*StalenessDecay=*/0.5);

  std::vector<std::string> Headers = {"iter"};
  Headers.push_back("t_gpu(s)");
  Headers.push_back("rows_gpu");
  Headers.push_back("imbalance");
  Table T(std::move(Headers));
  int Gpu = static_cast<int>(R.Iterations.front().Rows.size()) - 1;
  for (std::size_t It = 0; It < R.Iterations.size(); ++It) {
    const JacobiIteration &Iter = R.Iterations[It];
    std::vector<std::string> Row = {
        Table::num(static_cast<long long>(It + 1))};
    Row.push_back(
        Table::num(Iter.ComputeTimes[static_cast<std::size_t>(Gpu)], 4));
    Row.push_back(Table::num(Iter.Rows[static_cast<std::size_t>(Gpu)]));
    Row.push_back(Table::num(imbalance(Iter.ComputeTimes), 3));
    T.addRow(std::move(Row));
  }
  T.print(std::cout);

  Recovery Decay = timeToReconvergence(R);
  std::cout << "\nwith staleness decay 0.5: ";
  if (Decay.Iterations >= 0)
    std::cout << "reconverged to <" << ReconvergedBelow * 100.0
              << "% imbalance in " << Decay.Iterations << " iterations ("
              << Decay.VirtualSeconds << " virtual s after the fault)\n";
  else
    std::cout << "did NOT reconverge within the run\n";

  // Baseline: no decay — the model averages the fast and slow regimes,
  // so the balancer chases a GPU speed that no longer exists.
  JacobiReport NoDecay = runScenario(/*StalenessDecay=*/1.0);
  Recovery Base = timeToReconvergence(NoDecay);
  std::cout << "without decay (baseline):  ";
  if (Base.Iterations >= 0)
    std::cout << "reconverged in " << Base.Iterations << " iterations ("
              << Base.VirtualSeconds << " virtual s)\n";
  else
    std::cout << "did NOT reconverge within the run\n";

  std::cout << "\nExpected shape: rows migrate off the GPU right after "
               "the fault; decayed\nmodels reconverge in a handful of "
               "iterations, the no-decay baseline lags.\n";
  return 0;
}
