//===-- bench/serve_throughput.cpp - serve-mode request throughput --------===//
//
// Three serving paths over the same model files:
//
//  1. serial batch (engine::serveRequests): the PR-4 baseline — one
//     long-lived Session answering one request at a time, against the
//     pre-engine workflow of a fresh one-shot session per request. The
//     reported speedup is a lower bound on the real CLI ratio.
//  2. concurrent (engine::Server): N workers over the bounded queue
//     answering the *same* batch; the concatenated responses must be
//     byte-identical to the serial output and every request must get
//     exactly one response.
//  3. churn: open-loop overload with hot-reload churn — a background
//     thread rewrites a model file and reloads it while hundreds of
//     requests (a mix of popular totals that coalesce/cache and unique
//     totals that keep the workers busy) flood a small queue with a
//     deadline. Reports p50/p99 latency, shed rate, and coalesce+cache
//     hit rates, and checks the exactly-once accounting: submitted ==
//     answered + errors + shed, with zero errors and zero lost futures.
//
// Output: a summary on stdout and BENCH_serve_throughput.json in the
// working directory. With --smoke, runs tiny batches and only the
// correctness tripwires; the full run additionally enforces the >= 5x
// serial amortisation floor. --workers N sets the concurrent width
// (default 4).
//
//===----------------------------------------------------------------------===//

#include "core/Benchmark.h"
#include "engine/Serve.h"
#include "engine/Server.h"
#include "engine/Session.h"
#include "sim/Cluster.h"
#include "support/Options.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <future>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace fupermod;

namespace {

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// A loadModels-only session over \p Paths, as both the serve and the
/// one-shot partitioner create it. Returns nullptr on failure.
std::unique_ptr<engine::Session>
makeLoadedSession(const std::vector<std::string> &Paths) {
  engine::SessionConfig Cfg;
  Cfg.Algorithm = "geometric";
  Result<std::unique_ptr<engine::Session>> S =
      engine::Session::create(std::move(Cfg));
  if (!S) {
    std::cerr << "error: " << S.error() << "\n";
    return nullptr;
  }
  if (Status St = S.value()->loadModels(Paths); !St) {
    std::cerr << "error: " << St.error() << "\n";
    return nullptr;
  }
  return std::move(S.value());
}

double percentile(std::vector<double> Sorted, double P) {
  if (Sorted.empty())
    return 0.0;
  std::sort(Sorted.begin(), Sorted.end());
  std::size_t I = static_cast<std::size_t>(P * (Sorted.size() - 1) + 0.5);
  return Sorted[std::min(I, Sorted.size() - 1)];
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts(Argc, Argv, {"smoke"});
  const bool Smoke = Opts.has("smoke");
  const int Workers =
      static_cast<int>(std::max<std::int64_t>(1, Opts.getInt("workers", 4)));

  const int Ranks = Smoke ? 3 : 8;
  const int NumRequests = Smoke ? 8 : 64;

  // Build one model file per device, exactly as `builder --rank all`
  // would, so all serving paths start from files on disk.
  Cluster Cl = makeHeterogeneousCluster(Ranks, /*Variant=*/17);
  Cl.NoiseSigma = 0.02;
  engine::SessionConfig BuildCfg;
  BuildCfg.Platform = Cl;
  Result<std::unique_ptr<engine::Session>> BuildS =
      engine::Session::create(std::move(BuildCfg));
  if (!BuildS) {
    std::cerr << "error: " << BuildS.error() << "\n";
    return 1;
  }
  ModelBuildPlan Plan;
  Plan.MinSize = 100.0;
  Plan.MaxSize = 6000.0;
  Plan.NumPoints = Smoke ? 4 : 16;
  Plan.Prec.MinReps = 3;
  Plan.Prec.MaxReps = Smoke ? 4 : 6;
  Plan.Prec.TargetRelativeError = 0.02;
  if (Status St = BuildS.value()->measure(Plan); !St) {
    std::cerr << "error: " << St.error() << "\n";
    return 1;
  }
  std::filesystem::create_directories("serve_bench_models");
  std::vector<std::string> Paths;
  for (int R = 0; R < Ranks; ++R) {
    Paths.push_back("serve_bench_models/dev" + std::to_string(R) + ".fpm");
    if (Status St = BuildS.value()->saveModel(R, Paths.back()); !St) {
      std::cerr << "error: " << St.error() << "\n";
      return 1;
    }
  }
  // Two alternative contents for the churn phase: the original model and
  // a differently-fitted one, flipped onto dev0's path while serving.
  const std::string ChurnPath = Paths[0];
  std::string ContentA, ContentB;
  {
    std::ifstream IS(ChurnPath);
    std::ostringstream SS;
    SS << IS.rdbuf();
    ContentA = SS.str();
  }
  {
    std::string Alt = "serve_bench_models/dev0_alt.fpm";
    if (Status St = BuildS.value()->saveModel(1 % Ranks, Alt); !St) {
      std::cerr << "error: " << St.error() << "\n";
      return 1;
    }
    std::ifstream IS(Alt);
    std::ostringstream SS;
    SS << IS.rdbuf();
    ContentB = SS.str();
  }

  // The request batch: varying totals, mixed algorithms, with repeats so
  // the long-lived session's inverse-time caches can pay off.
  std::vector<engine::ServeRequest> Requests;
  for (int I = 0; I < NumRequests; ++I) {
    engine::ServeRequest Req;
    Req.Total = 1000 + (I % 8) * 500;
    if (I % 3 == 1)
      Req.Algorithm = "numerical";
    else if (I % 3 == 2)
      Req.Algorithm = "constant";
    Requests.push_back(Req);
  }

  std::cout << "=== serve throughput: serial, one-shot, concurrent ===\n\n"
            << "platform: " << Ranks << " devices, " << Plan.NumPoints
            << " points per model, " << NumRequests << " requests, "
            << Workers << " workers\n\n";

  // --- 1a. serial batch: one session answers the batch sequentially.
  std::ostringstream ServeOut;
  double T0 = now();
  std::unique_ptr<engine::Session> Long = makeLoadedSession(Paths);
  if (!Long)
    return 1;
  engine::ServeStats ServeSt = engine::serveRequests(*Long, Requests, ServeOut);
  double ServeSeconds = now() - T0;

  // --- 1b. one-shot: a fresh session (create + load + cold caches) per
  // request, the way repeated `partitioner --total N` invocations work.
  std::ostringstream OneShotOut;
  int OneShotAnswered = 0;
  T0 = now();
  for (const engine::ServeRequest &Req : Requests) {
    std::unique_ptr<engine::Session> S = makeLoadedSession(Paths);
    if (!S)
      return 1;
    OneShotAnswered +=
        engine::serveRequests(*S, {&Req, 1}, OneShotOut).Answered;
  }
  double OneShotSeconds = now() - T0;

  // --- 2. concurrent: N workers answer the same batch; responses are
  // collected in submission order and must concatenate to the serial
  // output byte for byte.
  std::unique_ptr<engine::Session> ConcS = makeLoadedSession(Paths);
  if (!ConcS)
    return 1;
  std::string ConcurrentOut;
  std::uint64_t ConcurrentCacheHits = 0, ConcurrentCoalesced = 0;
  double ConcurrentSeconds = 0.0;
  int ConcurrentAnswered = 0;
  {
    engine::ServerConfig SrvCfg;
    SrvCfg.Workers = Workers;
    SrvCfg.QueueCapacity = static_cast<std::size_t>(NumRequests) + 1;
    engine::Server Srv(*ConcS, SrvCfg);
    std::vector<std::future<engine::ServerResponse>> Futures;
    Futures.reserve(Requests.size());
    T0 = now();
    for (const engine::ServeRequest &Req : Requests) {
      engine::ServerRequest SReq;
      SReq.Total = Req.Total;
      SReq.Algorithm = Req.Algorithm;
      Futures.push_back(Srv.submit(std::move(SReq)));
    }
    for (auto &F : Futures) {
      engine::ServerResponse R = F.get();
      if (R.K == engine::ServerResponse::Kind::Ok) {
        ConcurrentOut += R.Reply.Text;
        ++ConcurrentAnswered;
      }
    }
    ConcurrentSeconds = now() - T0;
    engine::ServerStats St = Srv.stats();
    ConcurrentCacheHits = St.CacheHits;
    ConcurrentCoalesced = St.Coalesced;
  }

  // --- 3. churn: overload a small queue under hot-reload churn. Half
  // the requests hit popular totals (coalesce/cache food), half are
  // unique (keep the workers and the queue busy).
  const int ChurnRequests = Smoke ? 64 : 512;
  const int ChurnFlips = Smoke ? 6 : 24;
  std::unique_ptr<engine::Session> ChurnS = makeLoadedSession(Paths);
  if (!ChurnS)
    return 1;
  engine::ServerStats ChurnStats;
  std::vector<double> OkLatencies;
  int ChurnOk = 0, ChurnErr = 0, ChurnRej = 0;
  double ChurnSeconds = 0.0;
  std::uint64_t ChurnReloads = 0;
  {
    engine::ServerConfig SrvCfg;
    SrvCfg.Workers = Workers;
    SrvCfg.QueueCapacity = 16;
    SrvCfg.DefaultDeadline = std::chrono::milliseconds(Smoke ? 200 : 50);
    SrvCfg.SolveDelay = std::chrono::microseconds(200);
    engine::Server Srv(*ChurnS, SrvCfg);

    std::atomic<bool> StopChurn{false};
    std::thread Churn([&] {
      for (int Flip = 0; Flip < ChurnFlips && !StopChurn.load(); ++Flip) {
        {
          std::ofstream OS(ChurnPath, std::ios::binary | std::ios::trunc);
          OS << (Flip % 2 == 0 ? ContentB : ContentA);
        }
        if (Result<int> R = Srv.reload(); !R)
          std::cerr << "warning: churn reload failed: " << R.error() << "\n";
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });

    std::vector<std::future<engine::ServerResponse>> Futures;
    Futures.reserve(static_cast<std::size_t>(ChurnRequests));
    T0 = now();
    for (int I = 0; I < ChurnRequests; ++I) {
      engine::ServerRequest Req;
      // Even: one of 4 popular totals. Odd: unique total.
      Req.Total = (I % 2 == 0) ? 2000 + (I % 8) * 250 : 100000 + I;
      Futures.push_back(Srv.submit(std::move(Req)));
      // Open-loop pacing: bursts of 4 arriving faster than the workers
      // drain (the SolveDelay above caps service rate), so the queue
      // oscillates around full — some requests shed, duplicates of the
      // popular totals meet in flight and coalesce or hit the cache.
      if (I % 4 == 3)
        std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    for (auto &F : Futures) {
      engine::ServerResponse R = F.get();
      switch (R.K) {
      case engine::ServerResponse::Kind::Ok:
        ++ChurnOk;
        OkLatencies.push_back(R.LatencySeconds);
        break;
      case engine::ServerResponse::Kind::Error:
        ++ChurnErr;
        break;
      case engine::ServerResponse::Kind::Rejected:
        ++ChurnRej;
        break;
      }
    }
    ChurnSeconds = now() - T0;
    StopChurn.store(true);
    Churn.join();
    Srv.shutdown();
    ChurnStats = Srv.stats();
    ChurnReloads = ChurnStats.Reloads;
  }
  // Restore the churned file for any later phase/rerun.
  {
    std::ofstream OS(ChurnPath, std::ios::binary | std::ios::trunc);
    OS << ContentA;
  }

  const double ServeRps = NumRequests / ServeSeconds;
  const double OneShotRps = NumRequests / OneShotSeconds;
  const double ConcurrentRps = NumRequests / ConcurrentSeconds;
  const double Speedup = OneShotSeconds / ServeSeconds;
  const bool Identical = ServeOut.str() == OneShotOut.str();
  const bool ConcurrentIdentical = ConcurrentOut == ServeOut.str();
  const bool AllAnswered =
      ServeSt.Answered == NumRequests && ServeSt.Failed == 0 &&
      OneShotAnswered == NumRequests && ConcurrentAnswered == NumRequests;

  const double P50 = percentile(OkLatencies, 0.50) * 1e3;
  const double P99 = percentile(OkLatencies, 0.99) * 1e3;
  const std::uint64_t ChurnShed = ChurnStats.ShedQueueFull +
                                  ChurnStats.ShedDeadline +
                                  ChurnStats.ShedShutdown;
  const double ShedRate =
      ChurnStats.Submitted
          ? static_cast<double>(ChurnShed) /
                static_cast<double>(ChurnStats.Submitted)
          : 0.0;
  const double CacheHitRate =
      ChurnStats.CacheLookups
          ? static_cast<double>(ChurnStats.CacheHits) /
                static_cast<double>(ChurnStats.CacheLookups)
          : 0.0;
  // Exactly-once accounting: every churn submission resolved exactly one
  // future, and the server's own tally agrees.
  const bool ChurnAccounted =
      ChurnOk + ChurnErr + ChurnRej == ChurnRequests &&
      ChurnStats.Submitted == static_cast<std::uint64_t>(ChurnRequests) &&
      ChurnStats.Answered + ChurnStats.Errors + ChurnShed ==
          ChurnStats.Submitted &&
      ChurnErr == 0;

  std::printf("serial:     %d requests in %.4f s  (%.0f req/s)\n",
              NumRequests, ServeSeconds, ServeRps);
  std::printf("one-shot:   %d requests in %.4f s  (%.0f req/s)\n",
              NumRequests, OneShotSeconds, OneShotRps);
  std::printf("concurrent: %d requests in %.4f s  (%.0f req/s), "
              "%llu coalesced, %llu cache hits, outputs %s\n",
              NumRequests, ConcurrentSeconds, ConcurrentRps,
              static_cast<unsigned long long>(ConcurrentCoalesced),
              static_cast<unsigned long long>(ConcurrentCacheHits),
              ConcurrentIdentical ? "byte-identical" : "DIVERGED");
  std::printf("speedup:    %.1fx serial over one-shot, outputs %s\n",
              Speedup, Identical ? "byte-identical" : "DIVERGED");
  std::printf("churn:      %d requests in %.4f s under %llu reload(s): "
              "p50 %.2f ms, p99 %.2f ms, shed %.1f%% "
              "(queue_full %llu, deadline %llu), %llu coalesced, "
              "cache hit rate %.1f%%, accounting %s\n",
              ChurnRequests, ChurnSeconds,
              static_cast<unsigned long long>(ChurnReloads), P50, P99,
              100.0 * ShedRate,
              static_cast<unsigned long long>(ChurnStats.ShedQueueFull),
              static_cast<unsigned long long>(ChurnStats.ShedDeadline),
              static_cast<unsigned long long>(ChurnStats.Coalesced),
              100.0 * CacheHitRate, ChurnAccounted ? "exact" : "BROKEN");

  std::FILE *J = std::fopen("BENCH_serve_throughput.json", "w");
  if (J) {
    std::fprintf(J,
                 "{\n"
                 "  \"bench\": \"serve_throughput\",\n"
                 "  \"mode\": \"%s\",\n"
                 "  \"devices\": %d,\n"
                 "  \"points_per_model\": %d,\n"
                 "  \"requests\": %d,\n"
                 "  \"workers\": %d,\n"
                 "  \"serve_seconds\": %.6f,\n"
                 "  \"oneshot_seconds\": %.6f,\n"
                 "  \"concurrent_seconds\": %.6f,\n"
                 "  \"serve_requests_per_second\": %.1f,\n"
                 "  \"oneshot_requests_per_second\": %.1f,\n"
                 "  \"concurrent_requests_per_second\": %.1f,\n"
                 "  \"speedup\": %.2f,\n"
                 "  \"outputs_identical\": %s,\n"
                 "  \"concurrent_outputs_identical\": %s,\n"
                 "  \"churn\": {\n"
                 "    \"requests\": %d,\n"
                 "    \"reloads\": %llu,\n"
                 "    \"p50_latency_ms\": %.3f,\n"
                 "    \"p99_latency_ms\": %.3f,\n"
                 "    \"shed_rate\": %.4f,\n"
                 "    \"shed_queue_full\": %llu,\n"
                 "    \"shed_deadline\": %llu,\n"
                 "    \"coalesced\": %llu,\n"
                 "    \"cache_hits\": %llu,\n"
                 "    \"cache_lookups\": %llu,\n"
                 "    \"cache_hit_rate\": %.4f,\n"
                 "    \"exactly_once\": %s\n"
                 "  }\n"
                 "}\n",
                 Smoke ? "smoke" : "full", Ranks, Plan.NumPoints, NumRequests,
                 Workers, ServeSeconds, OneShotSeconds, ConcurrentSeconds,
                 ServeRps, OneShotRps, ConcurrentRps, Speedup,
                 Identical ? "true" : "false",
                 ConcurrentIdentical ? "true" : "false", ChurnRequests,
                 static_cast<unsigned long long>(ChurnReloads), P50, P99,
                 ShedRate,
                 static_cast<unsigned long long>(ChurnStats.ShedQueueFull),
                 static_cast<unsigned long long>(ChurnStats.ShedDeadline),
                 static_cast<unsigned long long>(ChurnStats.Coalesced),
                 static_cast<unsigned long long>(ChurnStats.CacheHits),
                 static_cast<unsigned long long>(ChurnStats.CacheLookups),
                 CacheHitRate, ChurnAccounted ? "true" : "false");
    std::fclose(J);
    std::cout << "# wrote BENCH_serve_throughput.json\n";
  }

  // Tripwires. Correctness gates every mode; the amortisation floor
  // gates the full run only (the smoke batch is too short to time).
  if (!Identical || !ConcurrentIdentical || !AllAnswered) {
    std::cout << "FAIL: serve outputs diverged across modes\n";
    return 1;
  }
  if (!ChurnAccounted) {
    std::cout << "FAIL: churn accounting lost or duplicated responses\n";
    return 1;
  }
  if (!Smoke && Speedup < 5.0) {
    std::cout << "FAIL: serve speedup " << Speedup << " < 5x floor\n";
    return 1;
  }
  return 0;
}
