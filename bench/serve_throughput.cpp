//===-- bench/serve_throughput.cpp - batch-serve request throughput -------===//
//
// Measures the amortisation the engine's serve mode buys: one long-lived
// Session (model files loaded and fitted once, inverse-time caches warm
// across requests) answering a 64-request batch, against the pre-engine
// workflow of a fresh one-shot partitioner run per request (session
// creation + model load + cold caches every time). The one-shot loop
// stays in-process, so it does not even pay exec/startup costs — the
// reported speedup is a lower bound on the real CLI ratio.
//
// Output: a summary on stdout and BENCH_serve_throughput.json in the
// working directory. With --smoke, runs a tiny batch and only checks
// that both paths answer every request with byte-identical output — the
// tier-1 tripwire. The full run additionally enforces the >= 5x
// throughput floor.
//
//===----------------------------------------------------------------------===//

#include "core/Benchmark.h"
#include "engine/Serve.h"
#include "engine/Session.h"
#include "sim/Cluster.h"
#include "support/Options.h"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace fupermod;

namespace {

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// A loadModels-only session over \p Paths, as both the serve and the
/// one-shot partitioner create it. Returns nullptr on failure.
std::unique_ptr<engine::Session>
makeLoadedSession(const std::vector<std::string> &Paths) {
  engine::SessionConfig Cfg;
  Cfg.Algorithm = "geometric";
  Result<std::unique_ptr<engine::Session>> S =
      engine::Session::create(std::move(Cfg));
  if (!S) {
    std::cerr << "error: " << S.error() << "\n";
    return nullptr;
  }
  if (Status St = S.value()->loadModels(Paths); !St) {
    std::cerr << "error: " << St.error() << "\n";
    return nullptr;
  }
  return std::move(S.value());
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts(Argc, Argv);
  const bool Smoke = Opts.has("smoke");

  const int Ranks = Smoke ? 3 : 8;
  const int NumRequests = Smoke ? 8 : 64;

  // Build one model file per device, exactly as `builder --rank all`
  // would, so both serving paths start from files on disk.
  Cluster Cl = makeHeterogeneousCluster(Ranks, /*Variant=*/17);
  Cl.NoiseSigma = 0.02;
  engine::SessionConfig BuildCfg;
  BuildCfg.Platform = Cl;
  Result<std::unique_ptr<engine::Session>> BuildS =
      engine::Session::create(std::move(BuildCfg));
  if (!BuildS) {
    std::cerr << "error: " << BuildS.error() << "\n";
    return 1;
  }
  ModelBuildPlan Plan;
  Plan.MinSize = 100.0;
  Plan.MaxSize = 6000.0;
  Plan.NumPoints = Smoke ? 4 : 16;
  Plan.Prec.MinReps = 3;
  Plan.Prec.MaxReps = Smoke ? 4 : 6;
  Plan.Prec.TargetRelativeError = 0.02;
  if (Status St = BuildS.value()->measure(Plan); !St) {
    std::cerr << "error: " << St.error() << "\n";
    return 1;
  }
  std::filesystem::create_directories("serve_bench_models");
  std::vector<std::string> Paths;
  for (int R = 0; R < Ranks; ++R) {
    Paths.push_back("serve_bench_models/dev" + std::to_string(R) + ".fpm");
    if (Status St = BuildS.value()->saveModel(R, Paths.back()); !St) {
      std::cerr << "error: " << St.error() << "\n";
      return 1;
    }
  }

  // The request batch: varying totals, mixed algorithms, with repeats so
  // the long-lived session's inverse-time caches can pay off.
  std::vector<engine::ServeRequest> Requests;
  for (int I = 0; I < NumRequests; ++I) {
    engine::ServeRequest Req;
    Req.Total = 1000 + (I % 8) * 500;
    if (I % 3 == 1)
      Req.Algorithm = "numerical";
    else if (I % 3 == 2)
      Req.Algorithm = "constant";
    Requests.push_back(Req);
  }

  std::cout << "=== serve throughput: batch mode vs repeated one-shot ===\n\n"
            << "platform: " << Ranks << " devices, " << Plan.NumPoints
            << " points per model, " << NumRequests << " requests\n\n";

  // Serve path: one session loads the models once and answers the batch.
  std::ostringstream ServeOut;
  double T0 = now();
  std::unique_ptr<engine::Session> Long = makeLoadedSession(Paths);
  if (!Long)
    return 1;
  engine::ServeStats ServeSt = engine::serveRequests(*Long, Requests, ServeOut);
  double ServeSeconds = now() - T0;

  // One-shot path: a fresh session (create + load + cold caches) per
  // request, the way repeated `partitioner --total N` invocations work.
  std::ostringstream OneShotOut;
  int OneShotAnswered = 0;
  T0 = now();
  for (const engine::ServeRequest &Req : Requests) {
    std::unique_ptr<engine::Session> S = makeLoadedSession(Paths);
    if (!S)
      return 1;
    OneShotAnswered +=
        engine::serveRequests(*S, {&Req, 1}, OneShotOut).Answered;
  }
  double OneShotSeconds = now() - T0;

  const double ServeRps = NumRequests / ServeSeconds;
  const double OneShotRps = NumRequests / OneShotSeconds;
  const double Speedup = OneShotSeconds / ServeSeconds;
  const bool Identical = ServeOut.str() == OneShotOut.str();
  const bool AllAnswered =
      ServeSt.Answered == NumRequests && ServeSt.Failed == 0 &&
      OneShotAnswered == NumRequests;

  std::printf("serve:    %d requests in %.4f s  (%.0f req/s)\n", NumRequests,
              ServeSeconds, ServeRps);
  std::printf("one-shot: %d requests in %.4f s  (%.0f req/s)\n", NumRequests,
              OneShotSeconds, OneShotRps);
  std::printf("speedup:  %.1fx, outputs %s\n", Speedup,
              Identical ? "byte-identical" : "DIVERGED");

  std::FILE *J = std::fopen("BENCH_serve_throughput.json", "w");
  if (J) {
    std::fprintf(J,
                 "{\n"
                 "  \"bench\": \"serve_throughput\",\n"
                 "  \"mode\": \"%s\",\n"
                 "  \"devices\": %d,\n"
                 "  \"points_per_model\": %d,\n"
                 "  \"requests\": %d,\n"
                 "  \"serve_seconds\": %.6f,\n"
                 "  \"oneshot_seconds\": %.6f,\n"
                 "  \"serve_requests_per_second\": %.1f,\n"
                 "  \"oneshot_requests_per_second\": %.1f,\n"
                 "  \"speedup\": %.2f,\n"
                 "  \"outputs_identical\": %s\n"
                 "}\n",
                 Smoke ? "smoke" : "full", Ranks, Plan.NumPoints, NumRequests,
                 ServeSeconds, OneShotSeconds, ServeRps, OneShotRps, Speedup,
                 Identical ? "true" : "false");
    std::fclose(J);
    std::cout << "# wrote BENCH_serve_throughput.json\n";
  }

  // Tripwires. Correctness gates both modes; the amortisation floor
  // gates the full run only (the smoke batch is too short to time).
  if (!Identical || !AllAnswered) {
    std::cout << "FAIL: serve output diverged from one-shot runs\n";
    return 1;
  }
  if (!Smoke && Speedup < 5.0) {
    std::cout << "FAIL: serve speedup " << Speedup << " < 5x floor\n";
    return 1;
  }
  return 0;
}
