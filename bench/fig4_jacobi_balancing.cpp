//===-- bench/fig4_jacobi_balancing.cpp - E4: paper Fig. 4 ----------------===//
//
// Reproduces Fig. 4 of the paper: dynamic load balancing of the Jacobi
// method with geometric data partitioning on a heterogeneous platform.
// The paper's figure shows per-process iteration times starting heavily
// imbalanced (~0.5 s vs ~0.1 s) and converging after a few iterations,
// with row counts annotated as they migrate (16 -> 11 -> 9 on the slow
// process).
//
// Output: per application iteration, each process's compute time and row
// count, plus the imbalance metric.
//
//===----------------------------------------------------------------------===//

#include "apps/Jacobi.h"
#include "core/Metrics.h"
#include "support/Table.h"

#include <iostream>

using namespace fupermod;

int main() {
  std::cout << "=== E4 (paper Fig. 4): dynamic load balancing of the "
               "Jacobi method ===\n\n";

  Cluster Cl = makeHclLikeCluster(false);
  Cl.NoiseSigma = 0.01;

  JacobiOptions O;
  O.N = 360;
  O.MaxIterations = 9; // The paper's figure shows 9 iterations.
  O.Tolerance = 0.0;   // Run all of them.
  O.Balance = true;
  O.Algorithm = "geometric";
  O.ModelKind = "piecewise";

  std::cout << "platform: " << Cl.size()
            << " heterogeneous devices (2 nodes); system size N = " << O.N
            << " rows\n\n";

  JacobiReport R = runJacobi(Cl, O);

  std::vector<std::string> Headers = {"iter"};
  for (int Q = 0; Q < Cl.size(); ++Q) {
    Headers.push_back("t" + std::to_string(Q) + "(s)");
    Headers.push_back("rows" + std::to_string(Q));
  }
  Headers.push_back("imbalance");
  Table T(std::move(Headers));

  for (std::size_t It = 0; It < R.Iterations.size(); ++It) {
    const JacobiIteration &Iter = R.Iterations[It];
    std::vector<std::string> Row = {
        Table::num(static_cast<long long>(It + 1))};
    for (int Q = 0; Q < Cl.size(); ++Q) {
      Row.push_back(
          Table::num(Iter.ComputeTimes[static_cast<std::size_t>(Q)], 4));
      Row.push_back(Table::num(Iter.Rows[static_cast<std::size_t>(Q)]));
    }
    Row.push_back(Table::num(imbalance(Iter.ComputeTimes), 3));
    T.addRow(std::move(Row));
  }
  T.print(std::cout);

  std::cout << "\nrun makespan: " << R.Makespan
            << " s; final residual: " << R.Residual << "\n";

  // Comparison run without balancing, as the figure's implicit baseline.
  JacobiOptions Off = O;
  Off.Balance = false;
  JacobiReport Plain = runJacobi(Cl, Off);
  double FirstImb = imbalance(R.Iterations.front().ComputeTimes);
  double LastImb = imbalance(R.Iterations.back().ComputeTimes);
  std::cout << "imbalance first -> last iteration: " << FirstImb << " -> "
            << LastImb << "\n";
  std::cout << "makespan balanced vs static-even: " << R.Makespan << " vs "
            << Plain.Makespan << " s\n";
  std::cout << "\nExpected shape (paper): per-process times converge to "
               "near-equality within\n~4-6 iterations while rows migrate "
               "from slow to fast devices.\n";
  return 0;
}
