//===-- bench/adaptive_matmul.cpp - dynamic 2D partitioning ([19]) --------===//
//
// Reproduces the extension of FPM-based partitioning to dynamic 2D
// matrix partitioning (paper ref [19], Zhong et al., Cluster 2012): the
// multiplication runs repeatedly with no a-priori models; after each
// round the measured per-device times refine partial models and the
// column-based layout is rebuilt. The per-round makespan drops from the
// even-layout cost towards the statically balanced one within a couple
// of rounds.
//
//===----------------------------------------------------------------------===//

#include "apps/AdaptiveMatMul.h"
#include "support/Table.h"

#include <iostream>

using namespace fupermod;

int main() {
  std::cout << "=== dynamic 2D matmul partitioning (paper ref [19]) "
               "===\n\n";

  Cluster Cl = makeHclLikeCluster(false);
  Cl.NoiseSigma = 0.01;

  AdaptiveMatMulOptions O;
  O.NBlocks = 16;
  O.BlockSize = 8;
  O.Rounds = 6;

  std::cout << "platform: " << Cl.size() << " devices; " << O.NBlocks
            << "x" << O.NBlocks << " blocks of " << O.BlockSize << "x"
            << O.BlockSize << "; " << O.Rounds
            << " rounds, even start, no a-priori models\n\n";

  AdaptiveMatMulReport R = runAdaptiveMatMul(Cl, O);

  std::vector<std::string> Headers = {"round", "makespan(s)"};
  for (int Q = 0; Q < Cl.size(); ++Q)
    Headers.push_back("blocks" + std::to_string(Q));
  Table T(std::move(Headers));
  for (std::size_t Round = 0; Round < R.RoundMakespans.size(); ++Round) {
    std::vector<std::string> Row = {
        Table::num(static_cast<long long>(Round + 1)),
        Table::num(R.RoundMakespans[Round], 3)};
    for (long long A : R.RoundAreas[Round])
      Row.push_back(Table::num(A));
    T.addRow(std::move(Row));
  }
  T.print(std::cout);

  std::cout << "\nfinal-round verification error: " << R.MaxError << "\n"
            << "makespan round 1 -> " << R.RoundMakespans.size() << ": "
            << R.RoundMakespans.front() << " -> "
            << R.RoundMakespans.back() << " s\n";
  std::cout << "\nExpected shape (ref [19]): the even first round is "
               "dominated by the slowest\ndevice; blocks migrate to fast "
               "devices within 1-2 rounds and the makespan\nsettles near "
               "the statically balanced value.\n";
  return 0;
}
