//===-- bench/redistribute.cpp - repartition data-movement cost -----------===//
//
// Measures what a repartition costs in data movement under two
// strategies, over the same deterministic schedule of random partitions:
//
//   gather-scatter   collect the whole array on rank 0, re-scatter by the
//                    new partition (the naive, always-correct baseline)
//   interval-overlap PartitionedVector::redistribute — every rank keeps
//                    old ∩ new in place and ships only the deltas with
//                    zero-copy subview sends
//
// The interval-overlap plan must (a) end bit-identical to the baseline,
// (b) move exactly the analytic minimum sum_steps (Total - sum_r |old_r ∩
// new_r|) units, and (c) copy zero bytes in the comm layer. The full run
// prints the movement ratio; --smoke runs a tiny schedule and exits
// non-zero on any violated invariant — the tier-1 tripwire.
//
// Output: a table on stdout and BENCH_redistribute.json in the working
// directory.
//
//===----------------------------------------------------------------------===//

#include "dist/PartitionedVector.h"
#include "mpp/CostModel.h"
#include "mpp/Runtime.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <vector>

using namespace fupermod;
using namespace fupermod::dist;

namespace {

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint64_t fnv1a(std::uint64_t H, const void *Data, std::size_t Len) {
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  for (std::size_t I = 0; I < Len; ++I) {
    H ^= P[I];
    H *= 1099511628211ull;
  }
  return H;
}

Dist distOf(const std::vector<std::int64_t> &Units) {
  Dist D;
  for (std::int64_t U : Units) {
    Part P;
    P.Units = U;
    D.Parts.push_back(P);
    D.Total += U;
  }
  return D;
}

/// The benchmark's partition schedule: deterministic random compositions
/// of \p Total over \p P ranks, occasionally with drained (zero-unit)
/// ranks — the degraded-device shape.
std::vector<std::vector<std::int64_t>> makeSchedule(int P,
                                                    std::int64_t Total,
                                                    int Steps) {
  std::mt19937 Rng(7u);
  std::vector<std::vector<std::int64_t>> Schedule;
  for (int S = 0; S <= Steps; ++S) {
    std::vector<std::int64_t> Cuts = {0, Total};
    std::uniform_int_distribution<std::int64_t> Pick(0, Total);
    for (int I = 0; I + 1 < P; ++I)
      Cuts.push_back(Pick(Rng));
    std::sort(Cuts.begin(), Cuts.end());
    std::vector<std::int64_t> Units;
    for (int I = 0; I < P; ++I)
      Units.push_back(Cuts[static_cast<std::size_t>(I) + 1] -
                      Cuts[static_cast<std::size_t>(I)]);
    if (S % 4 == 3) { // Drain one rank entirely every fourth step.
      int Victim = S % P;
      std::int64_t Freed = Units[static_cast<std::size_t>(Victim)];
      Units[static_cast<std::size_t>(Victim)] = 0;
      Units[static_cast<std::size_t>((Victim + 1) % P)] += Freed;
    }
    Schedule.push_back(std::move(Units));
  }
  return Schedule;
}

struct StrategyResult {
  std::string Name;
  double Makespan = 0.0;
  double WallSeconds = 0.0;
  unsigned long long BytesLogical = 0;
  unsigned long long BytesCopied = 0;
  unsigned long long Messages = 0;
  std::uint64_t Hash = 0;
};

/// Both strategies fill the same initial contents and apply the same
/// schedule; the hash is the FNV of the final array in global order.
double unitSeed(std::int64_t Unit, std::int64_t Elem) {
  std::uint64_t Z = static_cast<std::uint64_t>(Unit) * 0x9e3779b97f4a7c15ull +
                    static_cast<std::uint64_t>(Elem);
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  return static_cast<double>(Z >> 11) * (1.0 / 9007199254740992.0);
}

StrategyResult
runGatherScatter(const std::vector<std::vector<std::int64_t>> &Schedule,
                 std::int64_t EPU, std::shared_ptr<const CostModel> Cost) {
  StrategyResult Out;
  Out.Name = "gather-scatter";
  int P = static_cast<int>(Schedule.front().size());
  double Wall = now();
  std::uint64_t Hash = 0;
  SpmdResult R = runSpmd(
      P,
      [&](Comm &C) {
        int Me = C.rank();
        std::vector<double> Local(
            static_cast<std::size_t>(
                Schedule.front()[static_cast<std::size_t>(Me)]) *
            static_cast<std::size_t>(EPU));
        std::vector<std::int64_t> Starts =
            distOf(Schedule.front()).contiguousStarts();
        for (std::int64_t U = 0;
             U < Schedule.front()[static_cast<std::size_t>(Me)]; ++U)
          for (std::int64_t E = 0; E < EPU; ++E)
            Local[static_cast<std::size_t>(U * EPU + E)] =
                unitSeed(Starts[static_cast<std::size_t>(Me)] + U, E);

        for (std::size_t S = 1; S < Schedule.size(); ++S) {
          // The naive move: everything to rank 0, everything back out.
          std::vector<double> All =
              C.gatherv(std::span<const double>(Local), 0);
          std::vector<int> Counts;
          for (std::int64_t U : Schedule[S])
            Counts.push_back(static_cast<int>(U * EPU));
          Local = C.scatterv(std::span<const double>(All),
                             std::span<const int>(Counts), 0);
        }

        std::vector<double> Final =
            C.gatherv(std::span<const double>(Local), 0);
        if (Me == 0)
          Hash = fnv1a(1469598103934665603ull, Final.data(),
                       Final.size() * sizeof(double));
      },
      Cost);
  Out.WallSeconds = now() - Wall;
  Out.Makespan = R.makespan();
  Out.BytesLogical = R.Comm.BytesLogical;
  Out.BytesCopied = R.Comm.BytesCopied;
  Out.Messages = R.Comm.Messages;
  Out.Hash = Hash;
  return Out;
}

StrategyResult
runIntervalOverlap(const std::vector<std::vector<std::int64_t>> &Schedule,
                   std::int64_t EPU,
                   std::shared_ptr<const CostModel> Cost,
                   unsigned long long &RedistBytes,
                   unsigned long long &CopiedBeforeVerify) {
  StrategyResult Out;
  Out.Name = "interval-overlap";
  int P = static_cast<int>(Schedule.front().size());
  double Wall = now();
  std::uint64_t Hash = 0;
  unsigned long long RB = 0, CB = 0;
  SpmdResult R = runSpmd(
      P,
      [&](Comm &C) {
        PartitionedVector<double> V(C, distOf(Schedule.front()), EPU);
        V.generate([&](std::int64_t Unit, std::span<double> Row) {
          for (std::size_t E = 0; E < Row.size(); ++E)
            Row[E] = unitSeed(Unit, static_cast<std::int64_t>(E));
        });

        for (std::size_t S = 1; S < Schedule.size(); ++S)
          V.redistribute(distOf(Schedule[S]));

        // Counter snapshot before the verification gather adds its own
        // (copying) traffic. The second barrier keeps the other ranks
        // out of the gather until rank 0 has read the counters.
        C.barrier();
        if (C.rank() == 0) {
          CommStatsSnapshot Snap = C.commStats();
          RB = Snap.RedistributeBytes;
          CB = Snap.BytesCopied;
        }
        C.barrier();
        std::vector<double> Final =
            C.gatherv(std::span<const double>(V.local()), 0);
        if (C.rank() == 0)
          Hash = fnv1a(1469598103934665603ull, Final.data(),
                       Final.size() * sizeof(double));
      },
      Cost);
  Out.WallSeconds = now() - Wall;
  Out.Makespan = R.makespan();
  Out.BytesLogical = R.Comm.BytesLogical;
  Out.BytesCopied = R.Comm.BytesCopied;
  Out.Messages = R.Comm.Messages;
  Out.Hash = Hash;
  RedistBytes = RB;
  CopiedBeforeVerify = CB;
  return Out;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Smoke = false;
  for (int I = 1; I < Argc; ++I)
    if (std::string(Argv[I]) == "--smoke")
      Smoke = true;

  const int P = Smoke ? 4 : 8;
  const std::int64_t Total = Smoke ? 64 : 2048;
  const std::int64_t EPU = Smoke ? 8 : 256; // doubles per unit
  const int Steps = Smoke ? 6 : 24;

  std::vector<std::vector<std::int64_t>> Schedule =
      makeSchedule(P, Total, Steps);
  // A 100 Mbit-class fabric so the makespans weigh the moved bytes.
  auto Cost = std::make_shared<UniformCostModel>(1e-4, 12.5e6);

  // The analytic floor on moved units over the whole schedule.
  long long MinUnits = 0;
  for (std::size_t S = 1; S < Schedule.size(); ++S)
    MinUnits += minimalTransferUnits(distOf(Schedule[S - 1]).contiguousStarts(),
                                     distOf(Schedule[S]).contiguousStarts());
  unsigned long long MinBytes = static_cast<unsigned long long>(MinUnits) *
                                static_cast<unsigned long long>(EPU) *
                                sizeof(double);

  StrategyResult Naive = runGatherScatter(Schedule, EPU, Cost);
  unsigned long long RedistBytes = 0, CopiedBeforeVerify = 0;
  StrategyResult Overlap =
      runIntervalOverlap(Schedule, EPU, Cost, RedistBytes,
                         CopiedBeforeVerify);

  bool HashesMatch = Naive.Hash == Overlap.Hash;
  bool MovesMinimum = RedistBytes == MinBytes;
  bool ZeroCopy = CopiedBeforeVerify == 0;
  double Ratio = RedistBytes > 0
                     ? static_cast<double>(Naive.BytesLogical) /
                           static_cast<double>(RedistBytes)
                     : 0.0;

  std::printf("redistribute bench: P=%d total=%lld units epu=%lld steps=%d\n",
              P, static_cast<long long>(Total),
              static_cast<long long>(EPU), Steps);
  std::printf("  %-18s %14s %14s %12s %12s\n", "strategy", "bytes_logical",
              "bytes_copied", "makespan_s", "wall_s");
  for (const StrategyResult *S : {&Naive, &Overlap})
    std::printf("  %-18s %14llu %14llu %12.6f %12.3f\n", S->Name.c_str(),
                S->BytesLogical, S->BytesCopied, S->Makespan,
                S->WallSeconds);
  std::printf("  analytic minimum bytes %llu, plan moved %llu (%s), "
              "naive/plan ratio %.1fx\n",
              MinBytes, RedistBytes, MovesMinimum ? "minimal" : "EXCESS",
              Ratio);
  std::printf("  final arrays %s, comm-layer copies before verify %llu\n",
              HashesMatch ? "bit-identical" : "DIVERGED",
              CopiedBeforeVerify);

  std::FILE *J = std::fopen("BENCH_redistribute.json", "w");
  if (J) {
    std::fprintf(J, "{\n");
    std::fprintf(J, "  \"bench\": \"redistribute\",\n");
    std::fprintf(J, "  \"mode\": \"%s\",\n", Smoke ? "smoke" : "full");
    std::fprintf(J, "  \"devices\": %d,\n", P);
    std::fprintf(J, "  \"total_units\": %lld,\n",
                 static_cast<long long>(Total));
    std::fprintf(J, "  \"doubles_per_unit\": %lld,\n",
                 static_cast<long long>(EPU));
    std::fprintf(J, "  \"repartition_steps\": %d,\n", Steps);
    std::fprintf(J, "  \"strategies\": [\n");
    const StrategyResult *Rs[] = {&Naive, &Overlap};
    for (int I = 0; I < 2; ++I)
      std::fprintf(J,
                   "    {\"name\": \"%s\", \"bytes_logical\": %llu, "
                   "\"bytes_copied\": %llu, \"messages\": %llu, "
                   "\"makespan_seconds\": %.9f, \"wall_seconds\": %.3f, "
                   "\"final_hash\": \"%016llx\"}%s\n",
                   Rs[I]->Name.c_str(), Rs[I]->BytesLogical,
                   Rs[I]->BytesCopied, Rs[I]->Messages, Rs[I]->Makespan,
                   Rs[I]->WallSeconds,
                   static_cast<unsigned long long>(Rs[I]->Hash),
                   I == 0 ? "," : "");
    std::fprintf(J, "  ],\n");
    std::fprintf(J, "  \"analytic_minimum_bytes\": %llu,\n", MinBytes);
    std::fprintf(J, "  \"plan_redistribute_bytes\": %llu,\n", RedistBytes);
    std::fprintf(J, "  \"plan_moves_minimum\": %s,\n",
                 MovesMinimum ? "true" : "false");
    std::fprintf(J, "  \"plan_zero_copy\": %s,\n", ZeroCopy ? "true" : "false");
    std::fprintf(J, "  \"naive_over_plan_bytes_ratio\": %.3f,\n", Ratio);
    std::fprintf(J, "  \"final_arrays_identical\": %s\n",
                 HashesMatch ? "true" : "false");
    std::fprintf(J, "}\n");
    std::fclose(J);
  }

  if (!HashesMatch || !MovesMinimum || !ZeroCopy) {
    std::fprintf(stderr, "redistribute: invariant violated\n");
    return 1;
  }
  return 0;
}
