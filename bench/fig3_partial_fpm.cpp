//===-- bench/fig3_partial_fpm.cpp - E3: paper Fig. 3 ---------------------===//
//
// Reproduces Fig. 3 of the paper: construction of *partial* piecewise
// FPMs by the dynamic data partitioning algorithm with the geometric
// partitioner. Two heterogeneous simulated devices share a problem of D
// units; each iteration benchmarks the kernel at the current shares, adds
// the points to the partial models and repartitions (a new line through
// the origin of the speed plane).
//
// Output: per iteration, the distribution, the measured speeds at the new
// points (the intersections with the current line), and the relative
// change; then the accumulated partial models.
//
//===----------------------------------------------------------------------===//

#include "core/Dynamic.h"
#include "core/Metrics.h"
#include "core/Partitioners.h"
#include "mpp/Runtime.h"
#include "sim/Cluster.h"
#include "support/Table.h"

#include <iostream>

using namespace fupermod;

int main() {
  std::cout << "=== E3 (paper Fig. 3): partial FPM construction by dynamic "
               "partitioning ===\n\n";

  Cluster Cl = makeTwoDeviceCluster();
  Cl.NoiseSigma = 0.02;
  const std::int64_t D = 2000;
  const double Eps = 0.005;
  const int MaxIters = 15;

  std::cout << "devices: " << Cl.Devices[0].name() << ", "
            << Cl.Devices[1].name() << "; total D = " << D
            << " units; eps = " << Eps << "\n\n";

  Table Steps({"iter", "d0", "d1", "speed0(d0)", "speed1(d1)",
               "line_tau", "rel_change"});
  std::vector<std::vector<Point>> FinalPoints(2);

  runSpmd(2,
          [&](Comm &C) {
            SimDevice Dev = Cl.makeDevice(C.rank());
            SimDeviceBackend Backend(Dev, &C);
            DynamicContext Ctx(partitionGeometric, "piecewise", D, 2);
            Precision Prec;
            Prec.MinReps = 3;
            Prec.MaxReps = 6;
            Prec.TargetRelativeError = 0.03;

            for (int It = 1; It <= MaxIters; ++It) {
              Dist Before = Ctx.dist();
              std::int64_t MyUnits = Before.Parts[C.rank()].Units;
              double Units =
                  static_cast<double>(std::max<std::int64_t>(MyUnits, 1));
              Point Mine = runBenchmark(Backend, Units, Prec, &C);
              std::vector<Point> All =
                  C.allgatherv(std::span<const Point>(&Mine, 1));
              double Change = Ctx.updateAllAndRepartition(All);

              if (C.rank() == 0) {
                // The "line through the origin" of this iteration passes
                // through the measured points: its time coordinate is the
                // common completion time of the balanced distribution.
                double Tau = Ctx.dist().maxPredictedTime();
                Steps.addRow(
                    {Table::num(static_cast<long long>(It)),
                     Table::num(Before.Parts[0].Units),
                     Table::num(Before.Parts[1].Units),
                     Table::num(All[0].speed(), 1),
                     Table::num(All[1].speed(), 1), Table::num(Tau, 4),
                     Table::num(Change, 4)});
              }
              if (Change <= Eps)
                break;
            }
            if (C.rank() == 0)
              for (int Q = 0; Q < 2; ++Q)
                FinalPoints[static_cast<std::size_t>(Q)] =
                    Ctx.model(Q).points();
          },
          Cl.makeCostModel());

  Steps.print(std::cout);

  std::cout << "\n## accumulated partial-model points (few, clustered near "
               "the optimum)\n\n";
  for (int Q = 0; Q < 2; ++Q) {
    std::cout << "device " << Q << " (" << Cl.Devices[Q].name() << "):\n";
    Table Pts({"size", "time", "speed", "reps"});
    for (const Point &P : FinalPoints[static_cast<std::size_t>(Q)])
      Pts.addRow({Table::num(P.Units, 0), Table::num(P.Time, 4),
                  Table::num(P.speed(), 1),
                  Table::num(static_cast<long long>(P.Reps))});
    Pts.print(std::cout);
    std::cout << '\n';
  }

  std::cout << "Expected shape (paper): the bisection lines bracket the "
               "balanced slope within a\nfew iterations; the partial models "
               "hold only a handful of points, clustered\naround the final "
               "distribution, instead of a full sweep.\n";
  return 0;
}
