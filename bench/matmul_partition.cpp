//===-- bench/matmul_partition.cpp - E6: heterogeneous matmul -------------===//
//
// Reproduces the paper's Section 4.1 use case end to end: heterogeneous
// parallel matrix multiplication with the column-based 2D matrix
// partitioning of Beaumont et al. (ref [2]) driven by FPM-balanced areas.
//
// Two comparisons:
//  1. communication volume: column-based 2D arrangement vs 1D row strips
//     (total half-perimeter, and actual blocks transferred by the run);
//  2. execution time: FPM-balanced areas vs even areas, on the simulated
//     heterogeneous cluster, with the product verified against a serial
//     GEMM.
//
//===----------------------------------------------------------------------===//

#include "apps/MatMul.h"
#include "core/Metrics.h"
#include "core/Partitioners.h"
#include "support/Table.h"

#include <iostream>
#include <memory>

using namespace fupermod;

namespace {

std::vector<double> fpmAreas(const Cluster &Cl, std::int64_t D) {
  std::vector<std::unique_ptr<Model>> Models;
  std::vector<Model *> Ptrs;
  for (const DeviceProfile &P : Cl.Devices) {
    auto M = makeModel("piecewise");
    for (int I = 1; I <= 32; ++I) {
      Point Pt;
      Pt.Units = 1.5 * static_cast<double>(D) * I / 32.0;
      Pt.Time = P.time(Pt.Units);
      Pt.Reps = 1;
      M->update(Pt);
    }
    Models.push_back(std::move(M));
    Ptrs.push_back(Models.back().get());
  }
  Dist Out;
  bool Ok = partitionGeometric(D, Ptrs, Out);
  std::vector<double> Areas;
  for (const Part &P : Out.Parts)
    Areas.push_back(Ok ? static_cast<double>(P.Units) : 1.0);
  return Areas;
}

} // namespace

int main() {
  std::cout << "=== E6 (Section 4.1): heterogeneous parallel matrix "
               "multiplication ===\n\n";

  Cluster Cl = makeHclLikeCluster(false);
  Cl.NoiseSigma = 0.01;
  const int N = 18;      // 18x18 blocks.
  const int B = 8;       // 8x8 doubles per block.
  const std::int64_t D = static_cast<std::int64_t>(N) * N;

  std::cout << "platform: " << Cl.size() << " devices; matrix " << N * B
            << "x" << N * B << " doubles (" << N << "x" << N
            << " blocks of " << B << "x" << B << ")\n\n";

  std::vector<double> Balanced = fpmAreas(Cl, D);
  std::vector<double> Even(static_cast<std::size_t>(Cl.size()), 1.0);

  // Communication volume: column-based DP vs 1D row strips.
  std::cout << "## communication volume (unit-square half-perimeter, lower "
               "is better)\n\n";
  Table V({"areas", "column_based", "row_strips", "ratio"});
  for (auto [Name, Areas] :
       {std::pair<const char *, std::vector<double> &>{"fpm-balanced",
                                                       Balanced},
        std::pair<const char *, std::vector<double> &>{"even", Even}}) {
    double DP = partitionColumnBased(Areas).totalHalfPerimeter();
    double RS = partitionRowStrips(Areas).totalHalfPerimeter();
    V.addRow({Name, Table::num(DP, 3), Table::num(RS, 3),
              Table::num(DP / RS, 3)});
  }
  V.print(std::cout);

  // Execution: four combinations of {balanced, even} x {2D, 1D}.
  std::cout << "\n## execution on the simulated cluster (virtual seconds; "
               "verified against serial GEMM)\n\n";
  MatMulOptions O;
  O.NBlocks = N;
  O.BlockSize = B;
  O.Verify = true;

  Table E({"layout", "makespan(s)", "blocks_sent", "max_error",
           "compute_imbalance"});
  auto RunOne = [&](const char *Name, const std::vector<double> &Areas,
                    bool TwoD) {
    ColumnLayout L =
        TwoD ? partitionColumnBased(Areas) : partitionRowStrips(Areas);
    auto Rects = scaleToGrid(L, N);
    MatMulReport R = runParallelMatMul(Cl, Rects, O);
    E.addRow({Name, Table::num(R.Makespan, 3),
              Table::num(R.BlocksCommunicated),
              Table::num(R.MaxError, 12),
              Table::num(imbalance(R.ComputeTimes), 3)});
  };
  RunOne("fpm-balanced 2D", Balanced, true);
  RunOne("fpm-balanced 1D", Balanced, false);
  RunOne("even 2D", Even, true);
  RunOne("even 1D", Even, false);
  E.print(std::cout);

  std::cout << "\nExpected shape (paper): FPM-balanced areas cut the "
               "makespan well below the\neven split; the column-based 2D "
               "arrangement transfers fewer blocks than 1D\nrow strips for "
               "the same areas.\n";
  return 0;
}
