//===-- bench/ablation_sync.cpp - why synchronised measurement ------------===//
//
// Ablation for the paper's measurement methodology (Section 4.1): on
// multicore nodes, processes interfere through shared memory, so the
// speed of a core must be measured while *all* co-located cores execute
// the benchmark simultaneously (synchronised measurement). Benchmarking
// cores one at a time measures uncontended speed, which the application
// will never see.
//
// Setup: a node of 4 identical cores whose contended speed is ~2x lower
// than solo speed, plus a remote uncontended device. Models are built
// either from solo measurements (unsynchronised) or contended
// measurements (synchronised); both distributions are then evaluated
// against the *contended* ground truth, which is what execution delivers.
//
//===----------------------------------------------------------------------===//

#include "core/Metrics.h"
#include "core/Partitioners.h"
#include "sim/Cluster.h"
#include "support/Table.h"

#include <iostream>
#include <memory>

using namespace fupermod;

namespace {

std::unique_ptr<Model> modelFromProfile(const DeviceProfile &P,
                                        double MaxSize) {
  auto M = makeModel("piecewise");
  for (int I = 1; I <= 24; ++I) {
    Point Pt;
    Pt.Units = MaxSize * I / 24.0;
    Pt.Time = P.time(Pt.Units);
    Pt.Reps = 1;
    M->update(Pt);
  }
  return M;
}

} // namespace

int main() {
  std::cout << "=== ablation: synchronised vs unsynchronised benchmarking "
               "on shared resources ===\n\n";

  // Node 0: four cores, heavy memory contention when all run (alpha 0.4
  // with 3 active peers -> contended speed = solo / 2.2).
  DeviceProfile Solo = makeCpuProfile("core-solo", 700.0, 20.0, 2500.0,
                                      300.0, 0.5);
  DeviceProfile Contended = withContention(Solo, /*ActivePeers=*/3, 0.4);
  // Node 1: one uncontended device.
  DeviceProfile Remote = makeCpuProfile("remote", 500.0, 20.0, 6000.0,
                                        600.0, 0.3);

  const int Cores = 4;
  const std::int64_t D = 9000;

  // Ground truth at execution time: all cores contended.
  std::vector<DeviceProfile> Truth;
  for (int I = 0; I < Cores; ++I)
    Truth.push_back(Contended);
  Truth.push_back(Remote);
  double Opt = optimalMakespan(D, Truth);

  auto Partition = [&](const DeviceProfile &CoreProfile) {
    std::vector<std::unique_ptr<Model>> Models;
    std::vector<Model *> Ptrs;
    for (int I = 0; I < Cores; ++I)
      Models.push_back(modelFromProfile(CoreProfile, 1.2 * D));
    Models.push_back(modelFromProfile(Remote, 1.2 * D));
    for (auto &M : Models)
      Ptrs.push_back(M.get());
    Dist Out;
    bool Ok = partitionGeometric(D, Ptrs, Out);
    (void)Ok;
    return Out;
  };

  Dist Sync = Partition(Contended);   // Measured under full contention.
  Dist Unsync = Partition(Solo);      // Measured one core at a time.

  Table T({"measurement", "core_share", "remote_share", "makespan(s)",
           "makespan/opt", "imbalance"});
  auto AddRow = [&](const char *Name, const Dist &Dst) {
    auto Times = trueTimes(Dst, Truth);
    T.addRow({Name, Table::num(Dst.Parts[0].Units),
              Table::num(Dst.Parts[Cores].Units),
              Table::num(makespan(Times), 3),
              Table::num(makespan(Times) / Opt, 3),
              Table::num(imbalance(Times), 3)});
  };
  AddRow("synchronised (contended)", Sync);
  AddRow("unsynchronised (solo)", Unsync);
  T.print(std::cout);

  std::cout << "\nExpected shape (paper Section 4.1): solo measurements "
               "overestimate the shared\ncores' speed, so the "
               "unsynchronised distribution overloads them and its true\n"
               "makespan exceeds the synchronised one's, which sits near "
               "the optimum.\n";
  return 0;
}
