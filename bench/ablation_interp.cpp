//===-- bench/ablation_interp.cpp - why Akima, not cubic ------------------===//
//
// Ablation for the framework's interpolation choice (paper ref [15]): the
// Akima-spline FPM is used instead of a classical C2 cubic spline because
// empirical performance data contains outliers and sharp cliffs, around
// which cubic splines oscillate globally while Akima's weights keep the
// disturbance local.
//
// Setup: the true time function of a CPU device with a cache cliff is
// sampled at 24 points; one sample is corrupted by a 3x outlier (a
// one-off measurement glitch). Each interpolant is compared against the
// clean ground truth on a dense grid.
//
// Output: RMS error, maximum error, and worst overshoot *outside* the
// corrupted sample's neighbourhood, per interpolant.
//
//===----------------------------------------------------------------------===//

#include "interp/AkimaSpline.h"
#include "interp/CubicSpline.h"
#include "interp/PiecewiseLinear.h"
#include "sim/DeviceProfile.h"
#include "support/Table.h"

#include <cmath>
#include <iostream>

using namespace fupermod;

int main() {
  std::cout << "=== ablation: interpolation method for FPM time functions "
               "===\n\n";

  DeviceProfile Device =
      makeCpuProfile("cpu", 800.0, 25.0, 2000.0, 150.0, 0.55);
  const double MaxSize = 4000.0;
  const int NumPoints = 24;
  const int OutlierIdx = 9;

  std::vector<double> Xs, Ts;
  Xs.push_back(0.0);
  Ts.push_back(0.0);
  for (int I = 1; I <= NumPoints; ++I) {
    double D = MaxSize * I / NumPoints;
    double T = Device.time(D);
    if (I == OutlierIdx)
      T *= 3.0; // One glitched measurement.
    Xs.push_back(D);
    Ts.push_back(T);
  }
  double OutlierX = MaxSize * OutlierIdx / NumPoints;

  AkimaSpline Akima(Xs, Ts);
  CubicSpline Cubic(Xs, Ts);
  PiecewiseLinear Linear(Xs, Ts);

  std::cout << "device: " << Device.name() << "; " << NumPoints
            << " samples up to " << MaxSize << " units; sample at "
            << OutlierX << " units corrupted by 3x\n\n";

  Table T({"interpolant", "rms_err(s)", "max_err(s)",
           "max_err_far_from_outlier(s)"});
  auto Evaluate = [&](const char *Name, const Interpolator &I) {
    double Sum = 0.0, Max = 0.0, MaxFar = 0.0;
    int Count = 0;
    for (double D = 50.0; D <= MaxSize; D += 10.0) {
      double Err = std::fabs(I.eval(D) - Device.time(D));
      Sum += Err * Err;
      ++Count;
      Max = std::max(Max, Err);
      // "Far": more than one sample spacing away from the outlier.
      if (std::fabs(D - OutlierX) > 1.5 * MaxSize / NumPoints)
        MaxFar = std::max(MaxFar, Err);
    }
    T.addRow({Name, Table::num(std::sqrt(Sum / Count), 4),
              Table::num(Max, 4), Table::num(MaxFar, 4)});
  };
  Evaluate("akima", Akima);
  Evaluate("natural cubic", Cubic);
  Evaluate("piecewise linear", Linear);
  T.print(std::cout);

  std::cout << "\nExpected shape: all interpolants are wrong near the "
               "corrupted sample, but the\ncubic spline also rings far "
               "away from it (global C2 coupling), while Akima and\n"
               "piecewise-linear errors stay confined to the outlier's "
               "neighbourhood. This is\nwhy the Akima FPM is the smooth "
               "model of choice (it additionally offers the C1\n"
               "derivative the numerical partitioner needs, which "
               "piecewise-linear lacks).\n";
  return 0;
}
