//===-- bench/model_cost.cpp - E7: model construction cost ----------------===//
//
// Reproduces the paper's Section 4.3/4.4 cost-efficiency argument: full
// functional models give the best static partitioning but are expensive
// to build; dynamic partitioning with partial estimation reaches nearly
// the same balance at a fraction of the benchmarking cost; CPM is nearly
// free but inaccurate across memory cliffs.
//
// Output: for each strategy, the virtual time spent on model
// construction/benchmarking, the number of experimental points, and the
// quality (true makespan / optimal) of the resulting distribution.
//
//===----------------------------------------------------------------------===//

#include "core/Dynamic.h"
#include "core/Metrics.h"
#include "core/Partitioners.h"
#include "mpp/Runtime.h"
#include "sim/Cluster.h"
#include "support/Table.h"

#include <iostream>

using namespace fupermod;

namespace {

struct StrategyResult {
  double BuildCost = 0.0;
  long long Points = 0;
  Dist Final;
};

StrategyResult runFullModels(const Cluster &Cl, std::int64_t D,
                             const char *Kind, Partitioner Algorithm,
                             int NumPoints) {
  StrategyResult Res;
  std::vector<std::unique_ptr<Model>> Models(
      static_cast<std::size_t>(Cl.size()));
  for (int R = 0; R < Cl.size(); ++R)
    Models[static_cast<std::size_t>(R)] = makeModel(Kind);

  runSpmd(Cl.size(),
          [&](Comm &C) {
            SimDevice Dev = Cl.makeDevice(C.rank());
            SimDeviceBackend Backend(Dev, &C);
            Precision Prec;
            Prec.MinReps = 3;
            Prec.MaxReps = 8;
            Prec.TargetRelativeError = 0.03;
            for (int I = 1; I <= NumPoints; ++I) {
              double Size = 1.2 * static_cast<double>(D) * I / NumPoints;
              Point P = runBenchmark(Backend, Size, Prec, &C);
              std::vector<Point> All =
                  C.allgatherv(std::span<const Point>(&P, 1));
              if (C.rank() == 0)
                for (int Q = 0; Q < C.size(); ++Q)
                  Models[static_cast<std::size_t>(Q)]->update(
                      All[static_cast<std::size_t>(Q)]);
            }
            C.barrier();
            if (C.rank() == 0)
              Res.BuildCost = C.time();
          },
          Cl.makeCostModel());

  std::vector<Model *> Ptrs;
  for (auto &M : Models) {
    Res.Points += static_cast<long long>(M->points().size());
    Ptrs.push_back(M.get());
  }
  Algorithm(D, Ptrs, Res.Final);
  return Res;
}

StrategyResult runDynamic(const Cluster &Cl, std::int64_t D) {
  StrategyResult Res;
  runSpmd(Cl.size(),
          [&](Comm &C) {
            SimDevice Dev = Cl.makeDevice(C.rank());
            SimDeviceBackend Backend(Dev, &C);
            DynamicContext Ctx(partitionGeometric, "piecewise", D,
                               C.size());
            Precision Prec;
            Prec.MinReps = 1;
            Prec.MaxReps = 3;
            Prec.TargetRelativeError = 0.05;
            runDynamicPartitioning(Ctx, C, Backend, Prec, /*Eps=*/0.01,
                                   /*MaxIterations=*/20);
            C.barrier();
            if (C.rank() == 0) {
              Res.BuildCost = C.time();
              Res.Final = Ctx.dist();
              for (int Q = 0; Q < C.size(); ++Q)
                Res.Points += static_cast<long long>(
                    Ctx.model(Q).points().size());
            }
          },
          Cl.makeCostModel());
  return Res;
}

StrategyResult runCpm(const Cluster &Cl, std::int64_t D) {
  StrategyResult Res;
  std::vector<std::unique_ptr<Model>> Models(
      static_cast<std::size_t>(Cl.size()));
  for (int R = 0; R < Cl.size(); ++R)
    Models[static_cast<std::size_t>(R)] = makeModel("cpm");
  runSpmd(Cl.size(),
          [&](Comm &C) {
            SimDevice Dev = Cl.makeDevice(C.rank());
            SimDeviceBackend Backend(Dev, &C);
            Precision Prec;
            Prec.MinReps = 3;
            Prec.MaxReps = 8;
            Prec.TargetRelativeError = 0.03;
            // The traditional serial benchmark: one small size.
            Point P = runBenchmark(Backend, 200.0, Prec, &C);
            std::vector<Point> All =
                C.allgatherv(std::span<const Point>(&P, 1));
            C.barrier();
            if (C.rank() == 0) {
              Res.BuildCost = C.time();
              for (int Q = 0; Q < C.size(); ++Q)
                Models[static_cast<std::size_t>(Q)]->update(
                    All[static_cast<std::size_t>(Q)]);
            }
          },
          Cl.makeCostModel());
  std::vector<Model *> Ptrs;
  for (auto &M : Models) {
    Res.Points += static_cast<long long>(M->points().size());
    Ptrs.push_back(M.get());
  }
  partitionConstant(D, Ptrs, Res.Final);
  return Res;
}

} // namespace

int main() {
  std::cout << "=== E7 (Sections 4.3/4.4): cost of model construction vs "
               "partition quality ===\n\n";

  Cluster Cl = makeTwoDeviceCluster();
  Cl.NoiseSigma = 0.02;
  const std::int64_t D = 6000;
  double Opt = optimalMakespan(D, Cl.Devices);

  std::cout << "platform: 2 heterogeneous devices; D = " << D
            << " units; optimal makespan = " << Opt << " s\n\n";

  Table T({"strategy", "build_cost(s)", "points", "makespan/opt",
           "imbalance"});
  auto AddRow = [&](const char *Name, const StrategyResult &R) {
    auto Times = trueTimes(R.Final, Cl.Devices);
    T.addRow({Name, Table::num(R.BuildCost, 2), Table::num(R.Points),
              Table::num(makespan(Times) / Opt, 3),
              Table::num(imbalance(Times), 3)});
  };

  AddRow("cpm (1 small benchmark)", runCpm(Cl, D));
  AddRow("dynamic partial FPM", runDynamic(Cl, D));
  AddRow("full piecewise FPM (16 pts)",
         runFullModels(Cl, D, "piecewise", partitionGeometric, 16));
  AddRow("full piecewise FPM (32 pts)",
         runFullModels(Cl, D, "piecewise", partitionGeometric, 32));
  AddRow("full akima FPM (32 pts)",
         runFullModels(Cl, D, "akima", partitionNumerical, 32));
  T.print(std::cout);

  std::cout << "\nExpected shape (paper): CPM is the cheapest but worst "
               "across the cliff;\ndynamic partial estimation reaches "
               "near-full-FPM quality at a small fraction\nof the full "
               "models' benchmarking cost.\n";
  return 0;
}
