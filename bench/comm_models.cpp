//===-- bench/comm_models.cpp - communication model validation ------------===//
//
// Companion experiment: the FuPerMod methodology pairs computation models
// with communication models. This bench (i) discovers the platform's
// link parameters from ping-pong measurements, the way MPIBlib does on
// real clusters, and (ii) validates the analytic collective predictions
// against the runtime's actual virtual times — the full communication
// analogue of building and checking a computation performance model.
//
//===----------------------------------------------------------------------===//

#include "commperf/HockneyFit.h"
#include "mpp/Runtime.h"
#include "sim/Cluster.h"
#include "support/Table.h"

#include <iostream>

using namespace fupermod;

int main() {
  std::cout << "=== communication performance models (MPIBlib-style) "
               "===\n\n";

  Cluster Cl = makeHclLikeCluster(true);
  auto Cost = Cl.makeCostModel();
  int P = Cl.size();

  // (i) Link discovery by ping-pong.
  std::cout << "## fitted vs configured link parameters\n\n";
  std::optional<LinkCost> FitIntra, FitInter;
  runSpmd(P,
          [&](Comm &C) {
            std::vector<std::size_t> Sizes = {256, 4096, 65536, 1 << 20};
            auto Near = pingPong(C, 0, 1, Sizes); // Same node.
            auto Far = pingPong(C, 0, 4, Sizes);  // Across nodes.
            if (C.rank() == 0) {
              FitIntra = fitHockney(Near);
              FitInter = fitHockney(Far);
            }
          },
          Cost);

  Table L({"link", "latency_cfg(us)", "latency_fit(us)",
           "bandwidth_cfg(GB/s)", "bandwidth_fit(GB/s)"});
  auto AddLink = [&](const char *Name, const LinkCost &Cfg,
                     const std::optional<LinkCost> &Fit) {
    L.addRow({Name, Table::num(Cfg.Latency * 1e6, 3),
              Table::num(Fit ? Fit->Latency * 1e6 : -1.0, 3),
              Table::num(1.0 / Cfg.BytePeriod / 1e9, 3),
              Table::num(Fit ? 1.0 / Fit->BytePeriod / 1e9 : -1.0, 3)});
  };
  AddLink("intra-node", Cl.Intra, FitIntra);
  AddLink("inter-node", Cl.Inter, FitInter);
  L.print(std::cout);

  // (ii) Collective prediction vs measurement on a uniform topology.
  std::cout << "\n## collective completion times: predicted vs measured "
               "(8 ranks, uniform link)\n\n";
  LinkCost Uniform{1e-5, 1.0 / 1e9};
  auto UniformCost = std::make_shared<UniformCostModel>(1e-5, 1e9);
  const int PU = 8;

  Table C({"collective", "payload(KiB)", "predicted(ms)", "measured(ms)"});
  for (std::size_t KiB : {4u, 64u, 1024u}) {
    std::size_t Bytes = KiB * 1024;

    double MeasuredBcast = 0.0, MeasuredRing = 0.0;
    runSpmd(PU,
            [&](Comm &Cm) {
              std::vector<std::byte> Data;
              if (Cm.rank() == 0)
                Data.resize(Bytes);
              Cm.bcastBytes(Data, 0);
              double End = Cm.allreduceValue(Cm.time(), ReduceOp::Max);
              if (Cm.rank() == 0)
                MeasuredBcast = End;
            },
            UniformCost);
    runSpmd(PU,
            [&](Comm &Cm) {
              std::vector<std::byte> Mine(Bytes / PU);
              Cm.allgathervRing(std::span<const std::byte>(Mine));
              double End = Cm.allreduceValue(Cm.time(), ReduceOp::Max);
              if (Cm.rank() == 0)
                MeasuredRing = End;
            },
            UniformCost);

    C.addRow({"bcast (binomial)", Table::num(static_cast<long long>(KiB)),
              Table::num(predictBcast(Uniform, PU, Bytes) * 1e3, 4),
              Table::num(MeasuredBcast * 1e3, 4)});
    C.addRow({"allgatherv (ring)", Table::num(static_cast<long long>(KiB)),
              Table::num(predictRingAllgather(Uniform, PU, Bytes / PU) *
                             1e3,
                         4),
              Table::num(MeasuredRing * 1e3, 4)});
  }
  C.print(std::cout);

  std::cout << "\nExpected shape: ping-pong fitting recovers the "
               "configured parameters to\nmachine precision, and every "
               "predicted collective time matches the measured\nvirtual "
               "time — the communication model is self-consistent.\n";
  return 0;
}
