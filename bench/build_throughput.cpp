//===-- bench/build_throughput.cpp - parallel builder throughput ----------===//
//
// Records the repo's perf trajectory for the model-building and
// partitioning hot path: wall time of buildModelsParallel at 1/2/4/8
// workers on an 8-device simulated cluster (with wall-time emulation, so
// a measurement costs real blocking time the way a device kernel does),
// bit-identity of the parallel Point sets against the serial build, the
// latency + inverse-time cache hit rate of the partitioners over the
// built models, and the hint-warm repeat-partition path: the same solve
// re-run through the warm partitioners with a PartitionHint, which must
// return identical unit counts at a fraction of the cold latency.
//
// Output: a table on stdout and BENCH_build_throughput.json in the
// working directory. With --smoke, runs a tiny configuration and exits
// non-zero if parallel output diverges from serial, the partitioners
// fail, or a warm repeat partition differs from its cold solve — the
// tier-1 perf tripwire.
//
//===----------------------------------------------------------------------===//

#include "core/Benchmark.h"
#include "core/Metrics.h"
#include "core/Partitioners.h"
#include "sim/Cluster.h"
#include "support/Options.h"
#include "support/Table.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>

using namespace fupermod;

namespace {

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool bitIdentical(const Point &A, const Point &B) {
  return std::memcmp(&A.Units, &B.Units, sizeof(double)) == 0 &&
         std::memcmp(&A.Time, &B.Time, sizeof(double)) == 0 &&
         A.Reps == B.Reps &&
         std::memcmp(&A.ConfidenceInterval, &B.ConfidenceInterval,
                     sizeof(double)) == 0 &&
         A.Status == B.Status;
}

bool identicalBuilds(const std::vector<BuiltModel> &A,
                     const std::vector<BuiltModel> &B) {
  if (A.size() != B.size())
    return false;
  for (std::size_t R = 0; R < A.size(); ++R) {
    if (A[R].Raw.size() != B[R].Raw.size())
      return false;
    for (std::size_t I = 0; I < A[R].Raw.size(); ++I)
      if (!bitIdentical(A[R].Raw[I], B[R].Raw[I]))
        return false;
  }
  return true;
}

struct PartitionStats {
  double ColdSeconds = 0.0;
  double WarmSeconds = 0.0;
  double HitRate = 0.0;
  bool Ok = true;
};

/// Times one partitioner cold (fresh caches) and warm (re-run with the
/// memoized inverse-time lookups populated) and reports the cache rate.
PartitionStats measurePartition(const Partitioner &Algorithm,
                                std::int64_t Total,
                                std::span<Model *const> Models) {
  for (Model *M : Models)
    M->clearEvalCache();
  Dist D;
  double T0 = now();
  bool Ok = Algorithm(Total, Models, D);
  double T1 = now();
  Dist D2;
  Ok = Algorithm(Total, Models, D2) && Ok;
  double T2 = now();

  PartitionStats S;
  S.Ok = Ok && D.sum() == Total && D2.sum() == Total;
  S.ColdSeconds = T1 - T0;
  S.WarmSeconds = T2 - T1;
  std::uint64_t Lookups = 0, Hits = 0;
  for (Model *M : Models) {
    Lookups += M->cacheLookups();
    Hits += M->cacheHits();
  }
  S.HitRate = Lookups ? static_cast<double>(Hits) /
                            static_cast<double>(Lookups)
                      : 0.0;
  return S;
}

struct WarmStats {
  double ColdSeconds = 0.0;
  /// Seconds per hint-warm repeat (the epoch-validated memo path).
  double WarmSeconds = 0.0;
  double Speedup = 0.0;
  bool Identical = true;
  bool Ok = true;
};

/// Times one warm partitioner cold (empty hint) and across \p Reps
/// hint-warm repeats, verifying every repeat returns the cold solve's
/// unit counts exactly.
WarmStats measureWarmPartition(const WarmPartitioner &Algorithm,
                               std::int64_t Total,
                               std::span<Model *const> Models, int Reps) {
  for (Model *M : Models)
    M->clearEvalCache();
  PartitionHint Hint;
  Dist Cold;
  double T0 = now();
  bool Ok = Algorithm(Total, Models, Cold, Hint);
  double T1 = now();

  WarmStats S;
  Dist Warm;
  double T2 = now();
  for (int R = 0; R < Reps; ++R) {
    Ok = Algorithm(Total, Models, Warm, Hint) && Ok;
    S.Identical = S.Identical && Warm.sameUnits(Cold);
  }
  double T3 = now();
  S.Ok = Ok && Cold.sum() == Total;
  S.ColdSeconds = T1 - T0;
  S.WarmSeconds = (T3 - T2) / Reps;
  S.Speedup = S.WarmSeconds > 0.0 ? S.ColdSeconds / S.WarmSeconds : 0.0;
  return S;
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts(Argc, Argv);
  const bool Smoke = Opts.has("smoke");

  // 8 heterogeneous devices; the smoke configuration shrinks everything
  // so the tier-1 run costs well under a second.
  const int Ranks = Smoke ? 3 : 8;
  const std::int64_t Total = Smoke ? 3000 : 20000;
  Cluster Cl = makeHeterogeneousCluster(Ranks, /*Variant=*/11);
  Cl.NoiseSigma = 0.02;

  ModelBuildPlan Plan;
  Plan.Kind = "piecewise";
  Plan.MinSize = 100.0;
  Plan.MaxSize = 6000.0;
  Plan.NumPoints = Smoke ? 4 : 12;
  Plan.Prec.MinReps = 3;
  Plan.Prec.MaxReps = Smoke ? 4 : 8;
  Plan.Prec.TargetRelativeError = 0.02;

  // Calibrate wall-time emulation so the serial build costs a measurable,
  // bounded amount of real time (~1.2 s full, ~0.1 s smoke): run once
  // without emulation to learn the total simulated seconds.
  double SimSeconds = 0.0;
  {
    std::vector<BuiltModel> Dry = buildModelsParallel(Cl, Plan);
    for (const BuiltModel &B : Dry)
      for (const Point &P : B.Raw)
        if (P.Reps > 0)
          SimSeconds += P.Time * P.Reps;
  }
  const double TargetSerialSeconds = Smoke ? 0.1 : 1.2;
  Plan.WallScale = SimSeconds > 0.0 ? TargetSerialSeconds / SimSeconds : 0.0;

  std::cout << "=== build throughput: parallel model construction & "
               "partitioning ===\n\n"
            << "platform: " << Ranks << " heterogeneous devices, "
            << Plan.NumPoints << " sizes in [" << Plan.MinSize << ", "
            << Plan.MaxSize << "], wall emulation "
            << TargetSerialSeconds << " s serial budget\n\n";

  // Build at increasing worker counts; Jobs = 1 is the serial reference.
  const int JobCounts[] = {1, 2, 4, 8};
  double Seconds[4] = {0, 0, 0, 0};
  std::vector<BuiltModel> Serial;
  bool Identical = true;
  Table T({"jobs", "build_wall(s)", "speedup", "bit_identical"});
  for (int J = 0; J < 4; ++J) {
    if (JobCounts[J] > Ranks && JobCounts[J] != 1 &&
        JobCounts[J] / 2 >= Ranks) {
      Seconds[J] = Seconds[J - 1];
      continue; // More workers than devices changes nothing; skip re-run.
    }
    Plan.Jobs = JobCounts[J];
    double T0 = now();
    std::vector<BuiltModel> Built = buildModelsParallel(Cl, Plan);
    Seconds[J] = now() - T0;
    if (JobCounts[J] == 1)
      Serial = std::move(Built);
    else {
      bool Same = identicalBuilds(Serial, Built);
      Identical = Identical && Same;
    }
    T.addRow({Table::num(JobCounts[J]), Table::num(Seconds[J], 3),
              Table::num(Seconds[0] / Seconds[J], 2),
              JobCounts[J] == 1 ? "(reference)"
                                : (Identical ? "yes" : "NO")});
  }
  T.print(std::cout);
  double Speedup8 = Seconds[0] / Seconds[3];

  // Partition latency & cache behaviour over the serial build's models.
  std::vector<Model *> Models;
  for (BuiltModel &B : Serial)
    Models.push_back(B.M.get());
  PartitionStats Geo =
      measurePartition(partitionGeometric, Total, Models);
  PartitionStats Num =
      measurePartition(partitionNumerical, Total, Models);

  // Hint-warm repeats: the epoch-validated memo path of the warm
  // partitioners, which --serve takes on every repeat request.
  const int WarmReps = Smoke ? 20 : 200;
  WarmStats GeoW = measureWarmPartition(partitionGeometricWarm, Total,
                                        Models, WarmReps);
  WarmStats NumW = measureWarmPartition(partitionNumericalWarm, Total,
                                        Models, WarmReps);

  std::cout << "\npartition latency (geometric): cold "
            << Geo.ColdSeconds * 1e6 << " us, warm "
            << Geo.WarmSeconds * 1e6 << " us, cache hit rate "
            << Geo.HitRate * 100.0 << "%\n"
            << "partition latency (numerical): cold "
            << Num.ColdSeconds * 1e6 << " us, warm "
            << Num.WarmSeconds * 1e6 << " us, cache hit rate "
            << Num.HitRate * 100.0 << "%\n"
            << "hint-warm repeat (geometric): " << GeoW.WarmSeconds * 1e6
            << " us (" << GeoW.Speedup << "x cold), units "
            << (GeoW.Identical ? "identical" : "DIVERGED") << "\n"
            << "hint-warm repeat (numerical): " << NumW.WarmSeconds * 1e6
            << " us (" << NumW.Speedup << "x cold), units "
            << (NumW.Identical ? "identical" : "DIVERGED") << "\n"
            << "\nserial " << Seconds[0] << " s -> 8 workers "
            << Seconds[3] << " s (" << Speedup8 << "x), outputs "
            << (Identical ? "bit-identical" : "DIVERGED") << "\n";

  std::FILE *J = std::fopen("BENCH_build_throughput.json", "w");
  if (J) {
    std::fprintf(J,
                 "{\n"
                 "  \"bench\": \"build_throughput\",\n"
                 "  \"mode\": \"%s\",\n"
                 "  \"devices\": %d,\n"
                 "  \"points_per_device\": %d,\n"
                 "  \"total_units\": %lld,\n"
                 "  \"build_wall_seconds\": {\"jobs1\": %.6f, \"jobs2\": "
                 "%.6f, \"jobs4\": %.6f, \"jobs8\": %.6f},\n"
                 "  \"speedup_8_workers\": %.3f,\n"
                 "  \"bit_identical\": %s,\n"
                 "  \"partition\": {\n"
                 "    \"geometric\": {\"cold_us\": %.2f, \"warm_us\": "
                 "%.2f, \"cache_hit_rate\": %.4f, \"hint_warm_us\": "
                 "%.3f, \"hint_speedup\": %.1f},\n"
                 "    \"numerical\": {\"cold_us\": %.2f, \"warm_us\": "
                 "%.2f, \"cache_hit_rate\": %.4f, \"hint_warm_us\": "
                 "%.3f, \"hint_speedup\": %.1f}\n"
                 "  },\n"
                 "  \"hint_units_identical\": %s\n"
                 "}\n",
                 Smoke ? "smoke" : "full", Ranks, Plan.NumPoints,
                 static_cast<long long>(Total), Seconds[0], Seconds[1],
                 Seconds[2], Seconds[3], Speedup8,
                 Identical ? "true" : "false", Geo.ColdSeconds * 1e6,
                 Geo.WarmSeconds * 1e6, Geo.HitRate,
                 GeoW.WarmSeconds * 1e6, GeoW.Speedup,
                 Num.ColdSeconds * 1e6, Num.WarmSeconds * 1e6,
                 Num.HitRate, NumW.WarmSeconds * 1e6, NumW.Speedup,
                 GeoW.Identical && NumW.Identical ? "true" : "false");
    std::fclose(J);
    std::cout << "# wrote BENCH_build_throughput.json\n";
  }

  // Tripwires. Determinism and partitioner health gate both modes; the
  // speedup floors gate the full run only (smoke is too short to time).
  if (!Identical || !Geo.Ok || !Num.Ok || !GeoW.Ok || !NumW.Ok) {
    std::cout << "FAIL: parallel build diverged or partitioning broke\n";
    return 1;
  }
  if (!GeoW.Identical || !NumW.Identical) {
    std::cout << "FAIL: hint-warm repeat partition diverged from cold\n";
    return 1;
  }
  if (!Smoke && Speedup8 < 3.0) {
    std::cout << "FAIL: 8-worker speedup " << Speedup8 << " < 3x floor\n";
    return 1;
  }
  if (!Smoke && (GeoW.Speedup < 10.0 || NumW.Speedup < 10.0)) {
    std::cout << "FAIL: hint-warm speedup (geometric " << GeoW.Speedup
              << "x, numerical " << NumW.Speedup << "x) < 10x floor\n";
    return 1;
  }
  return 0;
}
