//===-- bench/rank_sweep.cpp - runtime scalability sweep ------------------===//
//
// The scale story of the mpp substrate in one artefact: worlds from 8 to
// 2048 ranks on a simulated multi-node platform (32 ranks per node),
// recording for each size
//
//   * spawn cost and resident memory while the world is alive,
//   * channels actually instantiated vs the P² a dense mailbox matrix
//     would hold (the lazy-mailbox memory bound),
//   * wall latency of barrier / bcast / allreduce and of one dynamic
//     balancing round (gather times -> solve -> bcast counts),
//   * virtual completion times of bcast and gatherv under the
//     automatically selected algorithm vs the flat trees forced by
//     disabling two-level collectives — byte-identity checked by hash.
//
// Invariants enforced (nonzero exit on violation, also in --smoke):
// channels stay far below P², and on a multi-node topology the
// two-level collectives are never slower than the flat trees.
//
// Writes BENCH_rank_sweep.json into the working directory.
//
//===----------------------------------------------------------------------===//

#include "mpp/Runtime.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace fupermod;

namespace {

constexpr int RanksPerNode = 32;
constexpr std::size_t BcastBytes = 64 * 1024;
constexpr std::size_t GatherBytesPerRank = 1024;

std::shared_ptr<const CostModel> nodedCost(int P) {
  std::vector<int> NodeOf(static_cast<std::size_t>(P));
  for (int R = 0; R < P; ++R)
    NodeOf[static_cast<std::size_t>(R)] = R / RanksPerNode;
  return std::make_shared<TwoLevelCostModel>(
      std::move(NodeOf), LinkCost{1e-6, 1.0 / 8e9},
      LinkCost{5e-5, 1.0 / 1e9});
}

std::vector<std::byte> rankData(int Rank, std::size_t Len) {
  std::vector<std::byte> Data(Len);
  std::uint64_t X =
      0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(Rank) + 1);
  for (std::size_t I = 0; I < Len; ++I) {
    X ^= X >> 27;
    X *= 0x94d049bb133111ebull;
    Data[I] = static_cast<std::byte>(X >> 56);
  }
  return Data;
}

std::uint64_t fnv1a(std::span<const std::byte> Bytes, std::uint64_t H) {
  for (std::byte B : Bytes) {
    H ^= static_cast<std::uint64_t>(B);
    H *= 1099511628211ull;
  }
  return H;
}

/// Current VmRSS in MiB (Linux; 0 elsewhere).
double readRssMib() {
#if defined(__linux__)
  std::FILE *F = std::fopen("/proc/self/status", "r");
  if (!F)
    return 0.0;
  char Line[256];
  double Mib = 0.0;
  while (std::fgets(Line, sizeof(Line), F))
    if (std::strncmp(Line, "VmRSS:", 6) == 0) {
      long long Kb = 0;
      if (std::sscanf(Line + 6, "%lld", &Kb) == 1)
        Mib = static_cast<double>(Kb) / 1024.0;
      break;
    }
  std::fclose(F);
  return Mib;
#else
  return 0.0;
#endif
}

double wallMs(std::chrono::steady_clock::time_point T0,
              std::chrono::steady_clock::time_point T1) {
  return std::chrono::duration<double, std::milli>(T1 - T0).count();
}

/// Virtual completion of one bcast and one gatherv plus a hash of every
/// byte they produced (root data, gathered block, per-rank results).
struct VirtualRun {
  double BcastVirtual = 0.0;
  double GatherVirtual = 0.0;
  std::uint64_t Hash = 0;
  bool TwoLevel = false;
};

VirtualRun measureVirtual(int P, const std::shared_ptr<const CostModel> &Cost,
                          const SpmdOptions &Opts) {
  VirtualRun Out;
  // A node-misaligned root: with contiguous node blocks, a flat binomial
  // from a node leader happens to cross each inter-node link only once,
  // hiding the hierarchy's advantage. Rooting off-leader makes the flat
  // tree straddle node boundaries — the regime real applications hit.
  const int Root = P / 2 + 1 < P ? P / 2 + 1 : 0;
  runSpmd(
      P,
      [&](Comm &C) {
        if (C.rank() == 0)
          Out.TwoLevel = C.usesTwoLevelCollectives();

        std::vector<std::byte> Data;
        if (C.rank() == Root)
          Data = rankData(0, BcastBytes);
        C.barrier(); // Clocks now equal: virtual deltas are exact.
        double B0 = C.time();
        C.bcastBytes(Data, Root);
        double B1 = C.allreduceValue(C.time(), ReduceOp::Max);

        std::vector<std::byte> Mine = rankData(C.rank(), GatherBytesPerRank);
        C.barrier();
        double G0 = C.time();
        std::vector<std::byte> All = C.gathervBytes(Mine, Root);
        double G1 = C.allreduceValue(C.time(), ReduceOp::Max);

        // Every rank hashes what it saw; the root folds the lot so a
        // divergence anywhere flips the final hash.
        std::uint64_t H = fnv1a(Data, 1469598103934665603ull);
        std::vector<std::byte> HB(sizeof(H));
        std::memcpy(HB.data(), &H, sizeof(H));
        std::vector<std::byte> AllH = C.gathervBytes(HB, Root);
        if (C.rank() == Root) {
          Out.BcastVirtual = B1 - B0;
          Out.GatherVirtual = G1 - G0;
          Out.Hash = fnv1a(All, fnv1a(AllH, 1469598103934665603ull));
        }
      },
      Cost, Opts);
  return Out;
}

struct Entry {
  int Ranks = 0;
  int Nodes = 0;
  bool TwoLevel = false;
  double SpawnWallMs = 0.0;
  unsigned long long Channels = 0;
  double RssBeforeMib = 0.0;
  double RssDuringMib = 0.0;
  double BarrierWallUs = 0.0;
  double BcastWallUs = 0.0;
  double AllreduceWallUs = 0.0;
  double BalanceWallUs = 0.0;
  VirtualRun Selected;
  VirtualRun Flat;
};

Entry sweepOne(int P) {
  using Clock = std::chrono::steady_clock;
  Entry E;
  E.Ranks = P;
  E.Nodes = (P + RanksPerNode - 1) / RanksPerNode;
  auto Cost = nodedCost(P);

  E.RssBeforeMib = readRssMib();
  auto S0 = Clock::now();
  runSpmd(P, [](Comm &) {}, Cost);
  E.SpawnWallMs = wallMs(S0, Clock::now());

  // Virtual times + byte identity: selected algorithms vs forced-flat.
  E.Selected = measureVirtual(P, Cost, SpmdOptions{});
  SpmdOptions FlatOpts;
  FlatOpts.TwoLevelMinRanks = 0;
  E.Flat = measureVirtual(P, Cost, FlatOpts);
  E.TwoLevel = E.Selected.TwoLevel;

  // Wall-latency workload: nearest-neighbour halo ring, then timed
  // barrier / bcast / allreduce loops, then a dynamic-balancing round
  // (gather per-rank times at the root, recompute counts, bcast them).
  const int BarrierReps = 10, CollectiveReps = 5;
  Clock::time_point T0;
  runSpmd(
      P,
      [&](Comm &C) {
        int Right = (C.rank() + 1) % P;
        int Left = (C.rank() + P - 1) % P;
        std::vector<int> Halo = {C.rank(), C.rank() + 1};
        for (int I = 0; I < 3; ++I)
          (void)C.sendrecv<int>(Right, 5, std::span<const int>(Halo), Left,
                                5);
        C.barrier();
        if (C.rank() == 0)
          E.RssDuringMib = readRssMib();

        C.barrier();
        if (C.rank() == 0)
          T0 = Clock::now();
        for (int I = 0; I < BarrierReps; ++I)
          C.barrier();
        if (C.rank() == 0)
          E.BarrierWallUs =
              wallMs(T0, Clock::now()) * 1e3 / BarrierReps;

        std::vector<std::byte> Data;
        C.barrier();
        if (C.rank() == 0)
          T0 = Clock::now();
        for (int I = 0; I < CollectiveReps; ++I) {
          if (C.rank() == 0)
            Data = rankData(I, BcastBytes);
          C.bcastBytes(Data, 0);
        }
        C.barrier();
        if (C.rank() == 0)
          E.BcastWallUs =
              wallMs(T0, Clock::now()) * 1e3 / CollectiveReps;

        C.barrier();
        if (C.rank() == 0)
          T0 = Clock::now();
        for (int I = 0; I < CollectiveReps; ++I)
          (void)C.allreduceValue(static_cast<double>(C.rank() + I),
                                 ReduceOp::Max);
        C.barrier();
        if (C.rank() == 0)
          E.AllreduceWallUs =
              wallMs(T0, Clock::now()) * 1e3 / CollectiveReps;

        // One balancing round, the communication footprint of the
        // paper's dynamic loop: per-rank measured time to the root,
        // inverse-time proportional counts back to everyone.
        C.barrier();
        if (C.rank() == 0)
          T0 = Clock::now();
        for (int I = 0; I < CollectiveReps; ++I) {
          double MyTime = 1.0 + 0.01 * ((C.rank() * 37 + I) % 23);
          std::vector<double> Times =
              C.gatherv(std::span<const double>(&MyTime, 1), 0);
          std::vector<std::int64_t> Counts(
              static_cast<std::size_t>(P));
          if (C.rank() == 0) {
            double SumInv = 0.0;
            for (double T : Times)
              SumInv += 1.0 / T;
            for (int R = 0; R < P; ++R)
              Counts[static_cast<std::size_t>(R)] =
                  static_cast<std::int64_t>(1e6 / Times[R] / SumInv);
          }
          C.bcast(Counts, 0);
        }
        C.barrier();
        if (C.rank() == 0)
          E.BalanceWallUs =
              wallMs(T0, Clock::now()) * 1e3 / CollectiveReps;
      },
      Cost);

  SpmdResult Metrics = runSpmd(
      P,
      [&](Comm &C) {
        int Right = (C.rank() + 1) % P;
        int Left = (C.rank() + P - 1) % P;
        std::vector<int> Halo = {C.rank()};
        for (int I = 0; I < 3; ++I)
          (void)C.sendrecv<int>(Right, 5, std::span<const int>(Halo), Left,
                                5);
        C.barrier();
        (void)C.allreduceValue(1.0, ReduceOp::Sum);
      },
      Cost);
  E.Channels = Metrics.Comm.ChannelsCreated;
  return E;
}

bool checkEntry(const Entry &E) {
  bool Ok = true;
  unsigned long long Dense = static_cast<unsigned long long>(E.Ranks) *
                             static_cast<unsigned long long>(E.Ranks);
  // Sub-quadratic channel growth only shows from a few dozen ranks up;
  // at P=8 the trees alone are a sizeable fraction of the 64-slot matrix.
  if (E.Ranks >= 32 && !(E.Channels > 0 && E.Channels * 4 < Dense)) {
    std::fprintf(stderr,
                 "rank_sweep: P=%d instantiated %llu channels "
                 "(dense matrix %llu) — lazy mailboxes regressed\n",
                 E.Ranks, E.Channels, Dense);
    Ok = false;
  }
  if (E.Selected.Hash != E.Flat.Hash) {
    std::fprintf(stderr,
                 "rank_sweep: P=%d two-level and flat collectives "
                 "diverged (%016llx vs %016llx)\n",
                 E.Ranks,
                 static_cast<unsigned long long>(E.Selected.Hash),
                 static_cast<unsigned long long>(E.Flat.Hash));
    Ok = false;
  }
  const double Tol = 1e-9;
  if (E.TwoLevel &&
      (E.Selected.BcastVirtual > E.Flat.BcastVirtual * (1.0 + Tol) ||
       E.Selected.GatherVirtual > E.Flat.GatherVirtual * (1.0 + Tol))) {
    std::fprintf(stderr,
                 "rank_sweep: P=%d two-level slower than flat "
                 "(bcast %.3e vs %.3e, gather %.3e vs %.3e)\n",
                 E.Ranks, E.Selected.BcastVirtual, E.Flat.BcastVirtual,
                 E.Selected.GatherVirtual, E.Flat.GatherVirtual);
    Ok = false;
  }
  return Ok;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Smoke = false;
  for (int I = 1; I < Argc; ++I)
    if (std::string(Argv[I]) == "--smoke")
      Smoke = true;

  std::vector<int> Sizes = Smoke
                               ? std::vector<int>{8, 64}
                               : std::vector<int>{8, 32, 128, 512, 1024,
                                                  2048};

  std::printf("rank sweep: %d ranks/node, bcast %zu B, gather %zu B/rank\n",
              RanksPerNode, BcastBytes, GatherBytesPerRank);
  std::printf("  %6s %5s %9s %9s %10s %9s %9s %9s %9s %11s %11s\n", "ranks",
              "nodes", "spawn_ms", "channels", "rss_mib", "barr_us",
              "bcast_us", "allred_us", "balance_us", "bcast_virt",
              "gather_virt");

  std::vector<Entry> Entries;
  bool AllOk = true;
  for (int P : Sizes) {
    Entry E = sweepOne(P);
    AllOk = checkEntry(E) && AllOk;
    std::printf("  %6d %5d %9.1f %9llu %10.1f %9.1f %9.1f %9.1f %9.1f "
                "%11.3e %11.3e%s\n",
                E.Ranks, E.Nodes, E.SpawnWallMs, E.Channels, E.RssDuringMib,
                E.BarrierWallUs, E.BcastWallUs, E.AllreduceWallUs,
                E.BalanceWallUs, E.Selected.BcastVirtual,
                E.Selected.GatherVirtual, E.TwoLevel ? "  [2level]" : "");
    Entries.push_back(E);
  }

  std::FILE *J = std::fopen("BENCH_rank_sweep.json", "w");
  if (J) {
    std::fprintf(J, "{\n");
    std::fprintf(J, "  \"bench\": \"rank_sweep\",\n");
    std::fprintf(J, "  \"mode\": \"%s\",\n", Smoke ? "smoke" : "full");
    std::fprintf(J, "  \"ranks_per_node\": %d,\n", RanksPerNode);
    std::fprintf(J, "  \"bcast_bytes\": %zu,\n", BcastBytes);
    std::fprintf(J, "  \"gather_bytes_per_rank\": %zu,\n",
                 GatherBytesPerRank);
    std::fprintf(J, "  \"entries\": [\n");
    for (std::size_t I = 0; I < Entries.size(); ++I) {
      const Entry &E = Entries[I];
      std::fprintf(
          J,
          "    {\"ranks\": %d, \"nodes\": %d, \"two_level\": %s, "
          "\"spawn_wall_ms\": %.3f, \"channels_created\": %llu, "
          "\"channels_dense_matrix\": %llu, "
          "\"rss_before_mib\": %.1f, \"rss_during_mib\": %.1f, "
          "\"barrier_wall_us\": %.2f, \"bcast_wall_us\": %.2f, "
          "\"allreduce_wall_us\": %.2f, \"balance_round_wall_us\": %.2f, "
          "\"bcast_virtual_selected\": %.9e, \"bcast_virtual_flat\": %.9e, "
          "\"gather_virtual_selected\": %.9e, "
          "\"gather_virtual_flat\": %.9e, "
          "\"collectives_identical\": %s}%s\n",
          E.Ranks, E.Nodes, E.TwoLevel ? "true" : "false", E.SpawnWallMs,
          E.Channels,
          static_cast<unsigned long long>(E.Ranks) *
              static_cast<unsigned long long>(E.Ranks),
          E.RssBeforeMib, E.RssDuringMib, E.BarrierWallUs, E.BcastWallUs,
          E.AllreduceWallUs, E.BalanceWallUs, E.Selected.BcastVirtual,
          E.Flat.BcastVirtual, E.Selected.GatherVirtual,
          E.Flat.GatherVirtual,
          E.Selected.Hash == E.Flat.Hash ? "true" : "false",
          I + 1 < Entries.size() ? "," : "");
    }
    std::fprintf(J, "  ],\n");
    std::fprintf(J, "  \"all_invariants_hold\": %s\n",
                 AllOk ? "true" : "false");
    std::fprintf(J, "}\n");
    std::fclose(J);
  }

  if (!AllOk) {
    std::fprintf(stderr, "rank_sweep: invariant violated\n");
    return 1;
  }
  return 0;
}
