//===-- bench/equalize.cpp - E: dynamic equalization policy sweep ---------===//
//
// Proves the equalization subsystem out on two drifting workloads:
//
//  1. the Jacobi app under a scripted FaultPlan drift (slowdown ramps
//     that later recover), swept over the registered policies (off,
//     every-round, threshold, cost-arbitrated);
//  2. a synthetic GEMM-profile iterative loop driving
//     BalancedLoop::balanceEqualized directly over a PartitionedVector.
//
// Tripwires (the bench exits non-zero when any fails):
//  - every policy produces the bit-identical numerical result (FNV of
//    the final solution / final array) — repartitioning must never
//    change the mathematics;
//  - the cost-arbitrated policy's makespan stays within 1.05x of
//    every-round while moving at most 0.5x its redistribute bytes (the
//    arbiter earns its keep: near-equal speed at a fraction of the
//    migration traffic);
//  - the threshold policy fires exactly as often as an offline replay of
//    the recorded per-iteration times through a fresh ImbalanceMonitor
//    predicts (the monitor automaton is deterministic and observable).
//
// Output: a policy table per workload plus BENCH_equalize.json in the
// working directory. --smoke runs a reduced size and checks the same
// invariants.
//
//===----------------------------------------------------------------------===//

#include "apps/Jacobi.h"
#include "core/Partitioners.h"
#include "dist/PartitionedVector.h"
#include "engine/Balance.h"
#include "equalize/Monitor.h"
#include "equalize/Policy.h"
#include "mpp/Runtime.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

using namespace fupermod;

namespace {

std::uint64_t fnv1a(std::uint64_t H, const void *Data, std::size_t Len) {
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  for (std::size_t I = 0; I < Len; ++I) {
    H ^= P[I];
    H *= 1099511628211ull;
  }
  return H;
}

/// Scripted drift: a few ranks slow down by 3x after some busy time and
/// recover later (the multiplicative slowdown events compose, so the
/// second event divides the factor back out).
void addDrift(Cluster &Cl, double RampBusy, double RecoverBusy) {
  int P = Cl.size();
  for (int R : {1, P / 3, P / 2, (3 * P) / 4}) {
    if (R <= 0 || R >= P)
      continue;
    Cl.addFault(R, FaultPlan::slowdown(RampBusy, 3.0));
    Cl.addFault(R, FaultPlan::slowdown(RecoverBusy, 1.0 / 3.0));
  }
}

/// One policy's outcome on a workload.
struct PolicyResult {
  std::string Name;
  double Makespan = 0.0;
  unsigned long long RedistBytes = 0;
  std::uint64_t Hash = 0;
  equalize::EqualizeStats Stats;
};

equalize::EqualizeConfig configFor(const std::string &Policy, double Bpu,
                                   const LinkCost &Link) {
  equalize::EqualizeConfig Cfg;
  Cfg.Policy = Policy;
  Cfg.Period = 1; // "every" fires each round, the historical baseline.
  Cfg.Monitor.TriggerThreshold = 0.25;
  Cfg.Monitor.ClearThreshold = 0.2;
  Cfg.Monitor.Cooldown = 2;
  Cfg.Monitor.MinBreaches = 1;
  Cfg.Monitor.EwmaAlpha = 0.6; // Smooth the measurement noise.
  Cfg.Arbiter.BytesPerUnit = Bpu;
  Cfg.Arbiter.Link = Link;
  Cfg.Arbiter.HorizonRounds = 10;
  // The network is fast, so the absolute migration cost alone would
  // approve almost everything: demand a 15% projected round saving.
  Cfg.Arbiter.MinRelativeSaving = 0.15;
  return Cfg;
}

//===----------------------------------------------------------------------===//
// Workload 1: Jacobi under drift
//===----------------------------------------------------------------------===//

PolicyResult runJacobiPolicy(const Cluster &Cl, const std::string &Policy,
                             int N, int Iterations,
                             std::vector<JacobiIteration> *TraceOut) {
  JacobiOptions O;
  O.N = N;
  O.MaxIterations = Iterations;
  // Negative tolerance: never declare convergence (the system hits its
  // bitwise fixed point after ~14 sweeps), so every policy runs the same
  // fixed iteration count and the quiet tail after the drift is part of
  // the comparison.
  O.Tolerance = -1.0;
  O.Balance = true;
  O.StalenessDecay = 0.5; // Track the drift instead of averaging regimes.
  O.Equalize = configFor(Policy, static_cast<double>(N + 1) * sizeof(double),
                         Cl.Inter);

  JacobiReport R = runJacobi(Cl, O);
  PolicyResult Out;
  Out.Name = Policy;
  Out.Makespan = R.Makespan;
  Out.RedistBytes = R.Comm.RedistributeBytes;
  Out.Hash = fnv1a(1469598103934665603ull, R.Solution.data(),
                   R.Solution.size() * sizeof(double));
  Out.Stats = R.Equalize;
  if (TraceOut)
    *TraceOut = R.Iterations;
  return Out;
}

/// Offline replay of the threshold policy over the recorded trace: a
/// fresh policy instance is driven through the exact shouldSolve /
/// noteOutcome protocol the live loop uses, with each iteration's
/// compute times and row mask as input; an adopted rebalance is visible
/// as a row redistribution in the next iteration. The replayed trigger
/// count must equal the live run's — the policy is a pure deterministic
/// automaton over the time series.
std::uint64_t replayThresholdTriggers(
    const std::vector<JacobiIteration> &Trace,
    const equalize::EqualizeConfig &Cfg) {
  Result<std::unique_ptr<equalize::Equalizer>> EqR =
      equalize::makeEqualizer(Cfg);
  std::unique_ptr<equalize::Equalizer> Eq = std::move(EqR.value());
  for (std::size_t It = 0; It < Trace.size(); ++It) {
    const JacobiIteration &Iter = Trace[It];
    std::size_t P = Iter.ComputeTimes.size();
    std::vector<std::uint8_t> Active(P);
    for (std::size_t R = 0; R < P; ++R)
      Active[R] = Iter.Rows[R] > 0 ? 1 : 0;
    bool Solved =
        Eq->shouldSolve(Iter.ComputeTimes, Active, /*AnyFailed=*/false);
    bool Adopted = Solved && It + 1 < Trace.size() &&
                   Trace[It + 1].Rows != Iter.Rows;
    Eq->noteOutcome(Adopted, /*ForcedByFailure=*/false);
  }
  return Eq->stats().Triggers;
}

//===----------------------------------------------------------------------===//
// Workload 2: synthetic GEMM-profile loop over a PartitionedVector
//===----------------------------------------------------------------------===//

PolicyResult runSyntheticPolicy(const Cluster &Cl, const std::string &Policy,
                                std::int64_t Total, int Width, int Rounds) {
  int P = Cl.size();
  equalize::EqualizeConfig EqCfg = configFor(
      Policy, static_cast<double>(Width) * sizeof(double), Cl.Inter);

  PolicyResult Out;
  Out.Name = Policy;
  std::uint64_t Hash = 0;
  equalize::EqualizeStats Stats;

  SpmdResult R = runSpmd(
      P,
      [&](Comm &C) {
        int Me = C.rank();
        SimDevice Dev = Cl.makeDevice(Me);
        engine::BalancedLoop Loop(findPartitioner("geometric"), "piecewise",
                                  Total, P, /*StalenessDecay=*/0.5);
        Result<std::unique_ptr<equalize::Equalizer>> EqR =
            equalize::makeEqualizer(EqCfg);
        std::unique_ptr<equalize::Equalizer> Eq = std::move(EqR.value());

        dist::PartitionedVector<double> V(C, Loop.dist(), Width);
        V.generate([&](std::int64_t U, std::span<double> Row) {
          for (int W = 0; W < Width; ++W)
            Row[static_cast<std::size_t>(W)] =
                static_cast<double>(U * Width + W);
        });

        for (int Round = 0; Round < Rounds; ++Round) {
          double IterStart = C.time();
          std::int64_t MyUnits = V.units();
          bool DevFailed = false;
          if (MyUnits > 0) {
            Measurement M = Dev.measure(static_cast<double>(MyUnits));
            if (M.Status == MeasureStatus::Failed)
              DevFailed = true;
            else
              C.compute(M.Seconds);
          }
          Loop.balanceEqualized(C, IterStart, *Eq, DevFailed);
          Loop.redistributeIfChanged(V);
        }

        std::vector<double> Final =
            C.gatherv(std::span<const double>(V.local()), 0);
        if (Me == 0) {
          Hash = fnv1a(1469598103934665603ull, Final.data(),
                       Final.size() * sizeof(double));
          Stats = Eq->stats();
        }
      },
      Cl.makeCostModel());

  Out.Makespan = R.makespan();
  Out.RedistBytes = R.Comm.RedistributeBytes;
  Out.Hash = Hash;
  Out.Stats = Stats;
  return Out;
}

void printTable(const char *Title, const std::vector<PolicyResult> &Rows) {
  std::printf("%s\n", Title);
  std::printf("  %-11s %12s %16s %9s %8s %7s %11s\n", "policy",
              "makespan_s", "redist_bytes", "triggers", "vetoes",
              "rebal", "hash");
  for (const PolicyResult &R : Rows)
    std::printf("  %-11s %12.6f %16llu %9llu %8llu %7llu %011llx\n",
                R.Name.c_str(), R.Makespan, R.RedistBytes,
                static_cast<unsigned long long>(R.Stats.Triggers),
                static_cast<unsigned long long>(R.Stats.Vetoes),
                static_cast<unsigned long long>(R.Stats.Rebalances),
                static_cast<unsigned long long>(R.Hash & 0xfffffffffffull));
}

const PolicyResult &byName(const std::vector<PolicyResult> &Rows,
                           const char *Name) {
  for (const PolicyResult &R : Rows)
    if (R.Name == Name)
      return R;
  std::fprintf(stderr, "equalize: missing policy row %s\n", Name);
  std::exit(1);
}

} // namespace

int main(int Argc, char **Argv) {
  bool Smoke = false;
  for (int I = 1; I < Argc; ++I)
    if (std::string(Argv[I]) == "--smoke")
      Smoke = true;

  const int P = Smoke ? 8 : 64;
  const int N = Smoke ? 192 : 1024;
  const int Iterations = Smoke ? 40 : 64;
  const std::int64_t SynthTotal = Smoke ? 512 : 4096;
  const int SynthWidth = 16;
  const int SynthRounds = Smoke ? 44 : 64;
  const std::vector<std::string> Policies = {"off", "every", "threshold",
                                             "arbitrated"};

  // Deterministic (seeded) platform with measurement noise and scripted
  // drift: four ranks ramp to 3x slower partway through and recover
  // later. The noise is what separates the policies — every-round
  // balancing chases it with a small repartition almost every round,
  // while the monitor's EWMA window and the arbiter's relative-saving
  // floor see through it.
  Cluster Jac = makeHeterogeneousCluster(P, /*Variant=*/1);
  Jac.NoiseSigma = 0.05;
  addDrift(Jac, /*RampBusy=*/0.15, /*RecoverBusy=*/0.5);

  std::printf("equalize bench: P=%d N=%d iterations=%d (Jacobi), "
              "total=%lld width=%d rounds=%d (synthetic)\n\n",
              P, N, Iterations, static_cast<long long>(SynthTotal),
              SynthWidth, SynthRounds);

  std::vector<PolicyResult> JacRows;
  std::vector<JacobiIteration> ThresholdTrace;
  for (const std::string &Policy : Policies)
    JacRows.push_back(runJacobiPolicy(
        Jac, Policy, N, Iterations,
        Policy == "threshold" ? &ThresholdTrace : nullptr));
  printTable("Jacobi under scripted drift:", JacRows);

  Cluster Syn = makeHeterogeneousCluster(P, /*Variant=*/2);
  Syn.NoiseSigma = 0.05;
  addDrift(Syn, /*RampBusy=*/0.1, /*RecoverBusy=*/0.35);

  std::vector<PolicyResult> SynRows;
  for (const std::string &Policy : Policies)
    SynRows.push_back(
        runSyntheticPolicy(Syn, Policy, SynthTotal, SynthWidth, SynthRounds));
  std::printf("\n");
  printTable("Synthetic GEMM-profile loop under scripted drift:", SynRows);

  // --- Tripwires ---------------------------------------------------------
  const PolicyResult &JacEvery = byName(JacRows, "every");
  const PolicyResult &JacArb = byName(JacRows, "arbitrated");
  const PolicyResult &JacThresh = byName(JacRows, "threshold");
  const PolicyResult &SynEvery = byName(SynRows, "every");
  const PolicyResult &SynArb = byName(SynRows, "arbitrated");

  bool Identical = true;
  for (const std::vector<PolicyResult> *Rows : {&JacRows, &SynRows})
    for (const PolicyResult &R : *Rows)
      Identical = Identical && R.Hash == Rows->front().Hash;

  double MakespanRatio =
      JacEvery.Makespan > 0.0 ? JacArb.Makespan / JacEvery.Makespan : 1.0;
  bool MakespanOk = MakespanRatio <= 1.05;
  bool BytesOk =
      JacArb.RedistBytes * 2 <= JacEvery.RedistBytes &&
      SynArb.RedistBytes * 2 <= SynEvery.RedistBytes;

  std::uint64_t Expected = replayThresholdTriggers(
      ThresholdTrace, configFor("threshold", 0.0, Jac.Inter));
  bool TriggersExact = Expected == JacThresh.Stats.Triggers;

  std::printf("\n  arbitrated/every makespan ratio %.3f (bound 1.05), "
              "redistribute bytes %llu vs %llu (bound 0.5x)\n",
              MakespanRatio, JacArb.RedistBytes, JacEvery.RedistBytes);
  std::printf("  threshold triggers: live %llu, offline replay %llu (%s)\n",
              static_cast<unsigned long long>(JacThresh.Stats.Triggers),
              static_cast<unsigned long long>(Expected),
              TriggersExact ? "exact" : "MISMATCH");
  std::printf("  results across policies: %s\n",
              Identical ? "bit-identical" : "DIVERGED");

  std::FILE *J = std::fopen("BENCH_equalize.json", "w");
  if (J) {
    std::fprintf(J, "{\n");
    std::fprintf(J, "  \"bench\": \"equalize\",\n");
    std::fprintf(J, "  \"mode\": \"%s\",\n", Smoke ? "smoke" : "full");
    std::fprintf(J, "  \"devices\": %d,\n", P);
    std::fprintf(J, "  \"jacobi\": {\"n\": %d, \"iterations\": %d},\n", N,
                 Iterations);
    std::fprintf(J,
                 "  \"synthetic\": {\"total_units\": %lld, \"width\": %d, "
                 "\"rounds\": %d},\n",
                 static_cast<long long>(SynthTotal), SynthWidth,
                 SynthRounds);
    for (int W = 0; W < 2; ++W) {
      const std::vector<PolicyResult> &Rows = W == 0 ? JacRows : SynRows;
      std::fprintf(J, "  \"%s\": [\n", W == 0 ? "jacobi_policies"
                                              : "synthetic_policies");
      for (std::size_t I = 0; I < Rows.size(); ++I)
        std::fprintf(
            J,
            "    {\"policy\": \"%s\", \"makespan_seconds\": %.9f, "
            "\"redistribute_bytes\": %llu, \"triggers\": %llu, "
            "\"vetoes\": %llu, \"rebalances\": %llu, "
            "\"cooldown_suppressed\": %llu, \"predicted_savings\": %.9f, "
            "\"final_hash\": \"%016llx\"}%s\n",
            Rows[I].Name.c_str(), Rows[I].Makespan, Rows[I].RedistBytes,
            static_cast<unsigned long long>(Rows[I].Stats.Triggers),
            static_cast<unsigned long long>(Rows[I].Stats.Vetoes),
            static_cast<unsigned long long>(Rows[I].Stats.Rebalances),
            static_cast<unsigned long long>(
                Rows[I].Stats.CooldownSuppressed),
            Rows[I].Stats.PredictedSavings,
            static_cast<unsigned long long>(Rows[I].Hash),
            I + 1 < Rows.size() ? "," : "");
      std::fprintf(J, "  ],\n");
    }
    std::fprintf(J, "  \"arbitrated_over_every_makespan\": %.4f,\n",
                 MakespanRatio);
    std::fprintf(J, "  \"threshold_triggers_exact\": %s,\n",
                 TriggersExact ? "true" : "false");
    std::fprintf(J, "  \"results_identical\": %s\n",
                 Identical ? "true" : "false");
    std::fprintf(J, "}\n");
    std::fclose(J);
  }

  if (!Identical || !MakespanOk || !BytesOk || !TriggersExact) {
    std::fprintf(stderr, "equalize: invariant violated (identical=%d "
                         "makespan=%d bytes=%d triggers=%d)\n",
                 Identical, MakespanOk, BytesOk, TriggersExact);
    return 1;
  }
  return 0;
}
