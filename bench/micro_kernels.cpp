//===-- bench/micro_kernels.cpp - E8: substrate microbenchmarks -----------===//
//
// Microbenchmarks of the substrates the framework is built on: GEMM
// kernels, interpolators, the Newton solver, the partitioning algorithms,
// and the message-passing collectives.
//
// Two modes:
//  - bare invocation: the google-benchmark suite, as before;
//  - --gflops (or --smoke): a hand-rolled GEMM throughput phase that
//    pits gemmNaive / gemmBlocked / gemmMicro against each other, checks
//    the micro-kernel's result against gemmBlocked elementwise under the
//    a-priori reassociation bound (gemmAbsErrorBound), writes
//    BENCH_micro_kernels.json, and exits non-zero on a violated bound —
//    or, in the full run on an AVX2 machine, on a micro-kernel that
//    fails to reach 2x the blocked kernel's GFLOPS. --smoke shrinks the
//    sizes and skips the throughput floor (too short to time); it is the
//    tier-1 tripwire and must pass on portable-only builds too.
//
//===----------------------------------------------------------------------===//

#include "blas/Gemm.h"
#include "core/Partitioners.h"
#include "interp/AkimaSpline.h"
#include "interp/PiecewiseLinear.h"
#include "mpp/Runtime.h"
#include "sim/Cluster.h"
#include "solver/NewtonSolver.h"
#include "support/Table.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <iostream>
#include <memory>
#include <vector>

using namespace fupermod;

namespace {

void BM_GemmNaive(benchmark::State &State) {
  std::size_t N = static_cast<std::size_t>(State.range(0));
  std::vector<double> A(N * N), B(N * N), C(N * N, 0.0);
  fillDeterministic(A, 1);
  fillDeterministic(B, 2);
  for (auto _ : State) {
    gemmNaive(N, N, N, A, B, C);
    benchmark::DoNotOptimize(C.data());
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<std::int64_t>(2 * N * N * N));
}
BENCHMARK(BM_GemmNaive)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmBlocked(benchmark::State &State) {
  std::size_t N = static_cast<std::size_t>(State.range(0));
  std::vector<double> A(N * N), B(N * N), C(N * N, 0.0);
  fillDeterministic(A, 1);
  fillDeterministic(B, 2);
  for (auto _ : State) {
    gemmBlocked(N, N, N, A, B, C);
    benchmark::DoNotOptimize(C.data());
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<std::int64_t>(2 * N * N * N));
}
BENCHMARK(BM_GemmBlocked)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmMicro(benchmark::State &State) {
  std::size_t N = static_cast<std::size_t>(State.range(0));
  std::vector<double> A(N * N), B(N * N), C(N * N, 0.0);
  fillDeterministic(A, 1);
  fillDeterministic(B, 2);
  for (auto _ : State) {
    gemmMicro(N, N, N, A, B, C);
    benchmark::DoNotOptimize(C.data());
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<std::int64_t>(2 * N * N * N));
}
BENCHMARK(BM_GemmMicro)->Arg(64)->Arg(128)->Arg(256);

std::pair<std::vector<double>, std::vector<double>> interpData(int N) {
  std::vector<double> X, Y;
  for (int I = 0; I <= N; ++I) {
    X.push_back(static_cast<double>(I));
    Y.push_back(std::sin(0.1 * I) + 0.01 * I);
  }
  return {X, Y};
}

void BM_PiecewiseEval(benchmark::State &State) {
  auto [X, Y] = interpData(static_cast<int>(State.range(0)));
  PiecewiseLinear PL(X, Y);
  double T = 0.0;
  for (auto _ : State) {
    T += 0.37;
    if (T > X.back())
      T = 0.0;
    benchmark::DoNotOptimize(PL.eval(T));
  }
}
BENCHMARK(BM_PiecewiseEval)->Arg(16)->Arg(256)->Arg(4096);

void BM_AkimaFit(benchmark::State &State) {
  auto [X, Y] = interpData(static_cast<int>(State.range(0)));
  for (auto _ : State) {
    AkimaSpline Ak(X, Y);
    benchmark::DoNotOptimize(Ak.eval(1.5));
  }
}
BENCHMARK(BM_AkimaFit)->Arg(16)->Arg(256)->Arg(4096);

void BM_AkimaEval(benchmark::State &State) {
  auto [X, Y] = interpData(static_cast<int>(State.range(0)));
  AkimaSpline Ak(X, Y);
  double T = 0.0;
  for (auto _ : State) {
    T += 0.37;
    if (T > X.back())
      T = 0.0;
    benchmark::DoNotOptimize(Ak.eval(T));
  }
}
BENCHMARK(BM_AkimaEval)->Arg(16)->Arg(256)->Arg(4096);

void BM_NewtonSolve(benchmark::State &State) {
  std::size_t N = static_cast<std::size_t>(State.range(0));
  VectorFunction F = [N](std::span<const double> X, std::span<double> R) {
    for (std::size_t I = 0; I < N; ++I) {
      double Target = static_cast<double>(I + 1);
      R[I] = X[I] * X[I] - Target * Target;
    }
  };
  std::vector<double> X0(N, 0.5);
  for (auto _ : State) {
    NewtonResult Res = solveNewton(F, X0);
    benchmark::DoNotOptimize(Res.X.data());
  }
}
BENCHMARK(BM_NewtonSolve)->Arg(2)->Arg(8)->Arg(32);

std::vector<std::unique_ptr<Model>> benchModels(int P, double MaxSize,
                                                const char *Kind) {
  Cluster Cl = makeHclLikeCluster(true);
  std::vector<std::unique_ptr<Model>> Models;
  for (int I = 0; I < P; ++I) {
    auto M = makeModel(Kind);
    const DeviceProfile &Prof =
        Cl.Devices[static_cast<std::size_t>(I % Cl.size())];
    for (int K = 1; K <= 24; ++K) {
      Point Pt;
      Pt.Units = MaxSize * K / 24.0;
      Pt.Time = Prof.time(Pt.Units);
      Pt.Reps = 1;
      M->update(Pt);
    }
    Models.push_back(std::move(M));
  }
  return Models;
}

void BM_PartitionGeometric(benchmark::State &State) {
  int P = static_cast<int>(State.range(0));
  auto Models = benchModels(P, 30000.0, "piecewise");
  std::vector<Model *> Ptrs;
  for (auto &M : Models)
    Ptrs.push_back(M.get());
  Dist Out;
  for (auto _ : State) {
    partitionGeometric(20000, Ptrs, Out);
    benchmark::DoNotOptimize(Out.Parts.data());
  }
}
BENCHMARK(BM_PartitionGeometric)->Arg(2)->Arg(8)->Arg(32);

void BM_PartitionNumerical(benchmark::State &State) {
  int P = static_cast<int>(State.range(0));
  auto Models = benchModels(P, 30000.0, "akima");
  std::vector<Model *> Ptrs;
  for (auto &M : Models)
    Ptrs.push_back(M.get());
  Dist Out;
  for (auto _ : State) {
    partitionNumerical(20000, Ptrs, Out);
    benchmark::DoNotOptimize(Out.Parts.data());
  }
}
BENCHMARK(BM_PartitionNumerical)->Arg(2)->Arg(8)->Arg(32);

void BM_AllgathervWallClock(benchmark::State &State) {
  // Wall-clock cost of running a P-rank allgatherv round on the thread
  // runtime (spawn + exchange + join).
  int P = static_cast<int>(State.range(0));
  for (auto _ : State) {
    SpmdResult R = runSpmd(P, [](Comm &C) {
      std::vector<double> Mine(64, static_cast<double>(C.rank()));
      for (int I = 0; I < 10; ++I) {
        std::vector<double> All =
            C.allgatherv(std::span<const double>(Mine));
        benchmark::DoNotOptimize(All.data());
      }
    });
    benchmark::DoNotOptimize(R.FinalTimes.data());
  }
}
BENCHMARK(BM_AllgathervWallClock)->Arg(2)->Arg(4)->Arg(8);

//===----------------------------------------------------------------------===//
// --gflops / --smoke: the GEMM kernel-vs-kernel throughput phase
//===----------------------------------------------------------------------===//

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Seconds per call of \p Run: one warmup call, then repetitions until
/// both floors are met.
double timePerCall(const std::function<void()> &Run, int MinReps,
                   double MinSeconds) {
  Run();
  int Reps = 0;
  double T0 = now();
  double Elapsed = 0.0;
  do {
    Run();
    ++Reps;
    Elapsed = now() - T0;
  } while (Reps < MinReps || Elapsed < MinSeconds);
  return Elapsed / Reps;
}

int runGflopsPhase(bool Smoke) {
  // Odd-ish sizes exercise the micro-kernel's M- and N-edge paths, not
  // just full 4x8 tiles.
  const std::vector<std::size_t> Sizes =
      Smoke ? std::vector<std::size_t>{64, 100}
            : std::vector<std::size_t>{64, 128, 256, 384};
  const int MinReps = Smoke ? 3 : 5;
  const double MinSeconds = Smoke ? 0.004 : 0.06;
  const char *Isa = gemmIsaName(gemmMicroIsa());

  std::cout << "=== micro kernels: GEMM throughput (" << (Smoke ? "smoke" : "full")
            << ", micro-kernel isa " << Isa << ") ===\n\n";

  std::vector<double> NaiveG, BlockedG, MicroG;
  bool BoundOk = true;
  Table T({"size", "naive(GF)", "blocked(GF)", "micro(GF)", "micro/blocked",
           "bound_ok"});
  for (std::size_t N : Sizes) {
    std::vector<double> A(N * N), B(N * N), C0(N * N);
    fillDeterministic(A, 1);
    fillDeterministic(B, 2);
    fillDeterministic(C0, 3);

    // Correctness first: the micro-kernel result must sit within the
    // a-priori FP-reassociation bound of the blocked kernel, element by
    // element (both start from the same C0 so accumulation is included).
    std::vector<double> Cb = C0, Cm = C0, Bound(N * N);
    gemmBlocked(N, N, N, A, B, Cb);
    gemmMicro(N, N, N, A, B, Cm);
    gemmAbsErrorBound(N, N, N, A, B, C0, Bound);
    bool Ok = true;
    for (std::size_t I = 0; I < N * N; ++I)
      Ok = Ok && std::abs(Cb[I] - Cm[I]) <= Bound[I];
    BoundOk = BoundOk && Ok;

    double Flops = gemmFlops(N, N, N);
    std::vector<double> C(N * N, 0.0);
    double SN = timePerCall([&] { gemmNaive(N, N, N, A, B, C); }, MinReps,
                            MinSeconds);
    double SB = timePerCall([&] { gemmBlocked(N, N, N, A, B, C); }, MinReps,
                            MinSeconds);
    double SM = timePerCall([&] { gemmMicro(N, N, N, A, B, C); }, MinReps,
                            MinSeconds);
    NaiveG.push_back(Flops / SN * 1e-9);
    BlockedG.push_back(Flops / SB * 1e-9);
    MicroG.push_back(Flops / SM * 1e-9);
    T.addRow({Table::num(static_cast<std::int64_t>(N)),
              Table::num(NaiveG.back(), 2), Table::num(BlockedG.back(), 2),
              Table::num(MicroG.back(), 2),
              Table::num(MicroG.back() / BlockedG.back(), 2),
              Ok ? "yes" : "NO"});
  }
  T.print(std::cout);

  double SpeedupVsBlocked = MicroG.back() / BlockedG.back();
  double SpeedupVsNaive = MicroG.back() / NaiveG.back();
  std::cout << "\nmicro-kernel at " << Sizes.back()
            << ": " << SpeedupVsBlocked << "x blocked, " << SpeedupVsNaive
            << "x naive, error bound " << (BoundOk ? "held" : "VIOLATED")
            << "\n";

  std::FILE *J = std::fopen("BENCH_micro_kernels.json", "w");
  if (J) {
    auto List = [&](const std::vector<double> &V) {
      std::string S = "[";
      char Buf[32];
      for (std::size_t I = 0; I < V.size(); ++I) {
        std::snprintf(Buf, sizeof(Buf), "%s%.2f", I ? ", " : "", V[I]);
        S += Buf;
      }
      return S + "]";
    };
    std::string SizesS = "[";
    for (std::size_t I = 0; I < Sizes.size(); ++I)
      SizesS += (I ? ", " : "") + std::to_string(Sizes[I]);
    SizesS += "]";
    std::fprintf(J,
                 "{\n"
                 "  \"bench\": \"micro_kernels\",\n"
                 "  \"mode\": \"%s\",\n"
                 "  \"isa\": \"%s\",\n"
                 "  \"sizes\": %s,\n"
                 "  \"gflops\": {\n"
                 "    \"naive\": %s,\n"
                 "    \"blocked\": %s,\n"
                 "    \"micro\": %s\n"
                 "  },\n"
                 "  \"speedup_micro_vs_blocked\": %.3f,\n"
                 "  \"speedup_micro_vs_naive\": %.3f,\n"
                 "  \"error_bound_ok\": %s\n"
                 "}\n",
                 Smoke ? "smoke" : "full", Isa, SizesS.c_str(),
                 List(NaiveG).c_str(), List(BlockedG).c_str(),
                 List(MicroG).c_str(), SpeedupVsBlocked, SpeedupVsNaive,
                 BoundOk ? "true" : "false");
    std::fclose(J);
    std::cout << "# wrote BENCH_micro_kernels.json\n";
  }

  // Tripwires. The bound gates both modes and both ISAs; the throughput
  // floor gates only the full run with the AVX2 tile compiled in and
  // selected (the portable tile promises correctness, not 2x, and smoke
  // timings are too short to trust).
  if (!BoundOk) {
    std::cout << "FAIL: micro-kernel exceeded the reassociation bound\n";
    return 1;
  }
  if (!Smoke && gemmMicroIsa() == GemmIsa::Avx2 && SpeedupVsBlocked < 2.0) {
    std::cout << "FAIL: micro-kernel speedup " << SpeedupVsBlocked
              << " < 2x blocked floor\n";
    return 1;
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  for (int I = 1; I < Argc; ++I)
    if (std::strcmp(Argv[I], "--smoke") == 0 ||
        std::strcmp(Argv[I], "--gflops") == 0)
      return runGflopsPhase(std::strcmp(Argv[I], "--smoke") == 0);
  benchmark::Initialize(&Argc, Argv);
  if (benchmark::ReportUnrecognizedArguments(Argc, Argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
