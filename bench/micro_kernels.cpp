//===-- bench/micro_kernels.cpp - E8: substrate microbenchmarks -----------===//
//
// google-benchmark microbenchmarks of the substrates the framework is
// built on: GEMM kernels, interpolators, the Newton solver, the
// partitioning algorithms, and the message-passing collectives.
//
//===----------------------------------------------------------------------===//

#include "blas/Gemm.h"
#include "core/Partitioners.h"
#include "interp/AkimaSpline.h"
#include "interp/PiecewiseLinear.h"
#include "mpp/Runtime.h"
#include "sim/Cluster.h"
#include "solver/NewtonSolver.h"

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

using namespace fupermod;

namespace {

void BM_GemmNaive(benchmark::State &State) {
  std::size_t N = static_cast<std::size_t>(State.range(0));
  std::vector<double> A(N * N), B(N * N), C(N * N, 0.0);
  fillDeterministic(A, 1);
  fillDeterministic(B, 2);
  for (auto _ : State) {
    gemmNaive(N, N, N, A, B, C);
    benchmark::DoNotOptimize(C.data());
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<std::int64_t>(2 * N * N * N));
}
BENCHMARK(BM_GemmNaive)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmBlocked(benchmark::State &State) {
  std::size_t N = static_cast<std::size_t>(State.range(0));
  std::vector<double> A(N * N), B(N * N), C(N * N, 0.0);
  fillDeterministic(A, 1);
  fillDeterministic(B, 2);
  for (auto _ : State) {
    gemmBlocked(N, N, N, A, B, C);
    benchmark::DoNotOptimize(C.data());
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<std::int64_t>(2 * N * N * N));
}
BENCHMARK(BM_GemmBlocked)->Arg(64)->Arg(128)->Arg(256);

std::pair<std::vector<double>, std::vector<double>> interpData(int N) {
  std::vector<double> X, Y;
  for (int I = 0; I <= N; ++I) {
    X.push_back(static_cast<double>(I));
    Y.push_back(std::sin(0.1 * I) + 0.01 * I);
  }
  return {X, Y};
}

void BM_PiecewiseEval(benchmark::State &State) {
  auto [X, Y] = interpData(static_cast<int>(State.range(0)));
  PiecewiseLinear PL(X, Y);
  double T = 0.0;
  for (auto _ : State) {
    T += 0.37;
    if (T > X.back())
      T = 0.0;
    benchmark::DoNotOptimize(PL.eval(T));
  }
}
BENCHMARK(BM_PiecewiseEval)->Arg(16)->Arg(256)->Arg(4096);

void BM_AkimaFit(benchmark::State &State) {
  auto [X, Y] = interpData(static_cast<int>(State.range(0)));
  for (auto _ : State) {
    AkimaSpline Ak(X, Y);
    benchmark::DoNotOptimize(Ak.eval(1.5));
  }
}
BENCHMARK(BM_AkimaFit)->Arg(16)->Arg(256)->Arg(4096);

void BM_AkimaEval(benchmark::State &State) {
  auto [X, Y] = interpData(static_cast<int>(State.range(0)));
  AkimaSpline Ak(X, Y);
  double T = 0.0;
  for (auto _ : State) {
    T += 0.37;
    if (T > X.back())
      T = 0.0;
    benchmark::DoNotOptimize(Ak.eval(T));
  }
}
BENCHMARK(BM_AkimaEval)->Arg(16)->Arg(256)->Arg(4096);

void BM_NewtonSolve(benchmark::State &State) {
  std::size_t N = static_cast<std::size_t>(State.range(0));
  VectorFunction F = [N](std::span<const double> X, std::span<double> R) {
    for (std::size_t I = 0; I < N; ++I) {
      double Target = static_cast<double>(I + 1);
      R[I] = X[I] * X[I] - Target * Target;
    }
  };
  std::vector<double> X0(N, 0.5);
  for (auto _ : State) {
    NewtonResult Res = solveNewton(F, X0);
    benchmark::DoNotOptimize(Res.X.data());
  }
}
BENCHMARK(BM_NewtonSolve)->Arg(2)->Arg(8)->Arg(32);

std::vector<std::unique_ptr<Model>> benchModels(int P, double MaxSize,
                                                const char *Kind) {
  Cluster Cl = makeHclLikeCluster(true);
  std::vector<std::unique_ptr<Model>> Models;
  for (int I = 0; I < P; ++I) {
    auto M = makeModel(Kind);
    const DeviceProfile &Prof =
        Cl.Devices[static_cast<std::size_t>(I % Cl.size())];
    for (int K = 1; K <= 24; ++K) {
      Point Pt;
      Pt.Units = MaxSize * K / 24.0;
      Pt.Time = Prof.time(Pt.Units);
      Pt.Reps = 1;
      M->update(Pt);
    }
    Models.push_back(std::move(M));
  }
  return Models;
}

void BM_PartitionGeometric(benchmark::State &State) {
  int P = static_cast<int>(State.range(0));
  auto Models = benchModels(P, 30000.0, "piecewise");
  std::vector<Model *> Ptrs;
  for (auto &M : Models)
    Ptrs.push_back(M.get());
  Dist Out;
  for (auto _ : State) {
    partitionGeometric(20000, Ptrs, Out);
    benchmark::DoNotOptimize(Out.Parts.data());
  }
}
BENCHMARK(BM_PartitionGeometric)->Arg(2)->Arg(8)->Arg(32);

void BM_PartitionNumerical(benchmark::State &State) {
  int P = static_cast<int>(State.range(0));
  auto Models = benchModels(P, 30000.0, "akima");
  std::vector<Model *> Ptrs;
  for (auto &M : Models)
    Ptrs.push_back(M.get());
  Dist Out;
  for (auto _ : State) {
    partitionNumerical(20000, Ptrs, Out);
    benchmark::DoNotOptimize(Out.Parts.data());
  }
}
BENCHMARK(BM_PartitionNumerical)->Arg(2)->Arg(8)->Arg(32);

void BM_AllgathervWallClock(benchmark::State &State) {
  // Wall-clock cost of running a P-rank allgatherv round on the thread
  // runtime (spawn + exchange + join).
  int P = static_cast<int>(State.range(0));
  for (auto _ : State) {
    SpmdResult R = runSpmd(P, [](Comm &C) {
      std::vector<double> Mine(64, static_cast<double>(C.rank()));
      for (int I = 0; I < 10; ++I) {
        std::vector<double> All =
            C.allgatherv(std::span<const double>(Mine));
        benchmark::DoNotOptimize(All.data());
      }
    });
    benchmark::DoNotOptimize(R.FinalTimes.data());
  }
}
BENCHMARK(BM_AllgathervWallClock)->Arg(2)->Arg(4)->Arg(8);

} // namespace

BENCHMARK_MAIN();
