//===-- bench/ablation_precision.cpp - measurement precision knob ---------===//
//
// Ablation for the Precision parameters (paper's `fupermod_precision`):
// how tight must the confidence interval of each benchmark point be
// before the resulting models partition well? Looser targets are cheaper
// (fewer repetitions) but noisier models misplace the distribution.
//
// Setup: two heterogeneous devices with 8% measurement noise; full
// piecewise FPMs built from 16 synchronised benchmark points per device
// at different target relative errors; the resulting distribution is
// scored against the noise-free ground truth.
//
//===----------------------------------------------------------------------===//

#include "core/Dynamic.h"
#include "core/Metrics.h"
#include "core/Partitioners.h"
#include "mpp/Runtime.h"
#include "sim/Cluster.h"
#include "support/Table.h"

#include <iostream>
#include <memory>

using namespace fupermod;

int main() {
  std::cout << "=== ablation: benchmark precision vs partition quality "
               "===\n\n";

  Cluster Cl = makeTwoDeviceCluster();
  Cl.NoiseSigma = 0.08; // Deliberately noisy platform.
  const std::int64_t D = 6000;
  double Opt = optimalMakespan(D, Cl.Devices);

  std::cout << "2 devices, 8% relative measurement noise, D = " << D
            << " units, 16 model points per device\n\n";

  Table T({"target_rel_err", "avg_reps", "build_cost(s)", "makespan/opt",
           "imbalance"});

  for (double Target : {0.5, 0.2, 0.1, 0.05, 0.02, 0.01}) {
    std::vector<std::unique_ptr<Model>> Models(2);
    Models[0] = makeModel("piecewise");
    Models[1] = makeModel("piecewise");
    double BuildCost = 0.0;
    long long TotalReps = 0, NumPoints = 0;

    runSpmd(2,
            [&](Comm &C) {
              SimDevice Dev = Cl.makeDevice(C.rank());
              SimDeviceBackend Backend(Dev, &C);
              Precision Prec;
              Prec.MinReps = 2;
              Prec.MaxReps = 60;
              Prec.TargetRelativeError = Target;
              for (int I = 1; I <= 16; ++I) {
                Point P = runBenchmark(Backend,
                                       1.2 * static_cast<double>(D) * I /
                                           16.0,
                                       Prec, &C);
                std::vector<Point> All =
                    C.allgatherv(std::span<const Point>(&P, 1));
                if (C.rank() == 0) {
                  for (int Q = 0; Q < 2; ++Q) {
                    Models[static_cast<std::size_t>(Q)]->update(
                        All[static_cast<std::size_t>(Q)]);
                    TotalReps += All[static_cast<std::size_t>(Q)].Reps;
                    ++NumPoints;
                  }
                }
              }
              C.barrier();
              if (C.rank() == 0)
                BuildCost = C.time();
            },
            Cl.makeCostModel());

    std::vector<Model *> Ptrs = {Models[0].get(), Models[1].get()};
    Dist Out;
    if (!partitionGeometric(D, Ptrs, Out)) {
      std::cout << "partitioning failed at target " << Target << "\n";
      continue;
    }
    auto Times = trueTimes(Out, Cl.Devices);
    T.addRow({Table::num(Target, 2),
              Table::num(static_cast<double>(TotalReps) /
                             static_cast<double>(NumPoints),
                         1),
              Table::num(BuildCost, 1),
              Table::num(makespan(Times) / Opt, 3),
              Table::num(imbalance(Times), 3)});
  }
  T.print(std::cout);

  std::cout << "\nExpected shape: repetitions (and benchmarking cost) grow "
               "steeply as the target\ntightens, while partition quality "
               "saturates — a moderate target (2-5%) buys\nnearly all the "
               "achievable balance, which is why Precision is a first-class "
               "knob.\n";
  return 0;
}
